//! Truss decomposition and the truss-based edge ordering π_τ.
//!
//! The edge-oriented branching framework of the paper orders the edges of the
//! initial branch with the *truss-based edge ordering* (Wang, Yu & Long,
//! SIGMOD'24): repeatedly remove from the remaining graph the edge whose two
//! endpoints have the fewest common neighbours (smallest remaining support)
//! and append it to the ordering. The maximum support observed at removal
//! time, written τ in the paper, bounds the size of every candidate subgraph
//! produced by edge-oriented branching; τ < δ always holds (strictly, in the
//! sense that τ ≤ δ − 1 on any graph with at least one edge).
//!
//! The peeling is the standard bucket-queue truss decomposition, giving an
//! `O(δ·m)`-style running time (`O(Σ_e min(deg u, deg v))` for the support
//! updates).

use crate::graph::VertexId;
use crate::topology::GraphTopology;
use crate::triangles::{edge_supports, EdgeId, EdgeIndex};

/// The truss-based edge ordering of a graph.
#[derive(Clone, Debug)]
pub struct TrussOrdering {
    /// The edge index assigning dense ids to the undirected edges.
    pub index: EdgeIndex,
    /// Edge ids in peeling order (first removed first).
    pub order: Vec<EdgeId>,
    /// `position[e]` = index of edge `e` in [`TrussOrdering::order`].
    pub position: Vec<usize>,
    /// Remaining support of each edge at the moment it was removed.
    pub peel_support: Vec<u32>,
    /// τ: the maximum `peel_support` over all edges (0 for triangle-free graphs).
    pub tau: usize,
}

impl TrussOrdering {
    /// Endpoints of the `i`-th edge in peeling order.
    pub fn edge_at(&self, i: usize) -> (VertexId, VertexId) {
        self.index.endpoints(self.order[i])
    }

    /// Whether edge `a` is peeled before edge `b`.
    pub fn precedes(&self, a: EdgeId, b: EdgeId) -> bool {
        self.position[a as usize] < self.position[b as usize]
    }

    /// Number of edges in the ordering.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the graph had no edges.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Computes the truss-based edge ordering and the truss parameter τ of `g`.
pub fn truss_ordering<G: GraphTopology>(g: &G) -> TrussOrdering {
    let (index, mut support) = edge_supports(g);
    let m = index.len();
    let max_sup = support.iter().copied().max().unwrap_or(0) as usize;

    // Bucket queue keyed by current support; entries can be stale.
    let mut buckets: Vec<Vec<EdgeId>> = vec![Vec::new(); max_sup + 1];
    for e in 0..m {
        buckets[support[e] as usize].push(e as EdgeId);
    }

    let mut alive = vec![true; m];
    let mut order = Vec::with_capacity(m);
    let mut position = vec![0usize; m];
    let mut peel_support = vec![0u32; m];
    let mut tau = 0usize;
    let mut current = 0usize;
    let mut buf = Vec::new();

    for step in 0..m {
        let e = loop {
            if current > max_sup {
                unreachable!("support bucket queue exhausted before all edges were peeled");
            }
            match buckets[current].pop() {
                Some(e) if alive[e as usize] && support[e as usize] as usize == current => break e,
                Some(_) => continue,
                None => current += 1,
            }
        };

        alive[e as usize] = false;
        peel_support[e as usize] = support[e as usize];
        tau = tau.max(support[e as usize] as usize);
        position[e as usize] = step;
        order.push(e);

        // Every triangle (u, v, w) through e = (u, v) loses this edge: decrement
        // the supports of (u, w) and (v, w) if both are still alive.
        let (u, v) = index.endpoints(e);
        g.common_neighbors_into(u, v, &mut buf);
        for &w in &buf {
            let uw = index.edge_id(u, w).expect("triangle edge (u,w) must exist");
            let vw = index.edge_id(v, w).expect("triangle edge (v,w) must exist");
            if alive[uw as usize] && alive[vw as usize] {
                for &f in &[uw, vw] {
                    let fi = f as usize;
                    if support[fi] > 0 {
                        support[fi] -= 1;
                        buckets[support[fi] as usize].push(f);
                        if (support[fi] as usize) < current {
                            current = support[fi] as usize;
                        }
                    }
                }
            }
        }
    }

    TrussOrdering {
        index,
        order,
        position,
        peel_support,
        tau,
    }
}

/// Convenience wrapper returning only τ.
pub fn truss_number<G: GraphTopology>(g: &G) -> usize {
    truss_ordering(g).tau
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degeneracy::degeneracy;
    use crate::graph::Graph;

    #[test]
    fn edgeless_graph_has_empty_ordering() {
        let g = Graph::empty(4);
        let t = truss_ordering(&g);
        assert!(t.is_empty());
        assert_eq!(t.tau, 0);
    }

    #[test]
    fn triangle_free_graph_has_tau_zero() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let t = truss_ordering(&g);
        assert_eq!(t.tau, 0);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn complete_graph_tau_is_n_minus_two() {
        for n in 3..8 {
            let g = Graph::complete(n);
            assert_eq!(truss_number(&g), n - 2, "K_{n}");
        }
    }

    #[test]
    fn tau_is_strictly_less_than_degeneracy_on_graphs_with_edges() {
        let graphs = vec![
            Graph::complete(6),
            Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).unwrap(),
            Graph::from_edges(
                7,
                [
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 0),
                    (0, 2),
                    (4, 5),
                    (5, 6),
                    (6, 4),
                ],
            )
            .unwrap(),
        ];
        for g in graphs {
            assert!(truss_number(&g) < degeneracy(&g).max(1) || degeneracy(&g) == 0);
            assert!(truss_number(&g) <= degeneracy(&g));
        }
    }

    #[test]
    fn ordering_is_a_permutation() {
        let g = Graph::complete(6);
        let t = truss_ordering(&g);
        assert_eq!(t.len(), 15);
        let mut seen = vec![false; 15];
        for (i, &e) in t.order.iter().enumerate() {
            assert!(!seen[e as usize]);
            seen[e as usize] = true;
            assert_eq!(t.position[e as usize], i);
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn peel_support_bounds_later_common_neighbors() {
        // Structural property used by the paper: for each edge e, the number of
        // common neighbours w of its endpoints such that both triangle edges are
        // peeled after e is at most peel_support[e] <= tau.
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (5, 7),
                (4, 6),
            ],
        )
        .unwrap();
        let t = truss_ordering(&g);
        let mut buf = Vec::new();
        for i in 0..t.len() {
            let e = t.order[i];
            let (u, v) = t.index.endpoints(e);
            g.common_neighbors_into(u, v, &mut buf);
            let later = buf
                .iter()
                .filter(|&&w| {
                    let uw = t.index.edge_id(u, w).unwrap();
                    let vw = t.index.edge_id(v, w).unwrap();
                    t.position[uw as usize] > i && t.position[vw as usize] > i
                })
                .count();
            assert!(later <= t.peel_support[e as usize] as usize);
            assert!(later <= t.tau);
        }
    }

    #[test]
    fn pendant_triangle_is_peeled_with_low_support() {
        // Two triangles sharing vertex 2; edge (5,6) pendant triangle vs dense K4.
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (2, 4),
                (4, 5),
                (2, 5),
            ],
        )
        .unwrap();
        let t = truss_ordering(&g);
        // K4 on {0,1,2,3} forces tau = 2; pendant triangle edges peel at support <= 1.
        assert_eq!(t.tau, 2);
        let e45 = t.index.edge_id(4, 5).unwrap();
        assert!(t.peel_support[e45 as usize] <= 1);
    }

    #[test]
    fn precedes_is_consistent_with_positions() {
        let g = Graph::complete(4);
        let t = truss_ordering(&g);
        let first = t.order[0];
        let last = *t.order.last().unwrap();
        assert!(t.precedes(first, last));
        assert!(!t.precedes(last, first));
    }
}
