//! Triangle listing, triangle counting and per-edge support.
//!
//! The truss decomposition (and hence the truss-based edge ordering of the
//! paper) is driven by the *support* of an edge `(u, v)`: the number of
//! common neighbours of `u` and `v`, i.e. the number of triangles the edge
//! participates in. This module provides
//!
//! * [`EdgeIndex`] — a canonical dense numbering of the undirected edges,
//! * [`edge_supports`] — per-edge supports in `O(Σ_e min(deg u, deg v))`,
//! * [`triangle_count`] / [`list_triangles`] — global triangle statistics.

use crate::graph::VertexId;
use crate::topology::GraphTopology;

/// Identifier of an undirected edge in an [`EdgeIndex`].
pub type EdgeId = u32;

/// Dense numbering of the undirected edges of a graph.
///
/// Edge ids follow the CSR "upper adjacency" order: edges are grouped by
/// their smaller endpoint `u` and, within a group, sorted by the larger
/// endpoint `v`. The index supports `O(log deg)` lookup of an edge id from
/// its endpoints.
#[derive(Clone, Debug)]
pub struct EdgeIndex {
    /// `endpoints[e] = (u, v)` with `u < v`.
    endpoints: Vec<(VertexId, VertexId)>,
    /// For each vertex `u`, the first edge id whose smaller endpoint is `u`.
    upper_offsets: Vec<usize>,
    /// Larger endpoints, parallel to the id range of each vertex.
    upper_neighbors: Vec<VertexId>,
}

impl EdgeIndex {
    /// Builds the edge index of `g`.
    pub fn new<G: GraphTopology>(g: &G) -> Self {
        let n = g.n();
        let mut endpoints = Vec::with_capacity(g.m());
        let mut upper_offsets = Vec::with_capacity(n + 1);
        let mut upper_neighbors = Vec::with_capacity(g.m());
        upper_offsets.push(0);
        for u in g.vertices_iter() {
            for v in g.neighbors_iter(u) {
                if v > u {
                    endpoints.push((u, v));
                    upper_neighbors.push(v);
                }
            }
            upper_offsets.push(endpoints.len());
        }
        EdgeIndex {
            endpoints,
            upper_offsets,
            upper_neighbors,
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Endpoints `(u, v)` with `u < v` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[e as usize]
    }

    /// All endpoints, indexed by edge id.
    pub fn all_endpoints(&self) -> &[(VertexId, VertexId)] {
        &self.endpoints
    }

    /// Looks up the id of the edge `{u, v}`, if present.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let lo = self.upper_offsets[a as usize];
        let hi = self.upper_offsets[a as usize + 1];
        self.upper_neighbors[lo..hi]
            .binary_search(&b)
            .ok()
            .map(|off| (lo + off) as EdgeId)
    }
}

/// Computes the support (number of common neighbours) of every edge.
///
/// Returns the [`EdgeIndex`] together with `support[e]` for every edge id.
pub fn edge_supports<G: GraphTopology>(g: &G) -> (EdgeIndex, Vec<u32>) {
    let index = EdgeIndex::new(g);
    let mut support = vec![0u32; index.len()];
    let mut buf = Vec::new();
    for (e, s) in support.iter_mut().enumerate() {
        let (u, v) = index.endpoints(e as EdgeId);
        g.common_neighbors_into(u, v, &mut buf);
        *s = buf.len() as u32;
    }
    (index, support)
}

/// Counts the triangles of `g`.
///
/// Uses forward-neighbourhood intersection over a degree ordering so dense
/// graphs do not pay a quadratic factor per high-degree vertex.
pub fn triangle_count<G: GraphTopology>(g: &G) -> u64 {
    let n = g.n();
    // Rank vertices by (degree, id); forward edges go from lower to higher rank.
    let mut rank = vec![0u32; n];
    let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
    by_degree.sort_unstable_by_key(|&v| (g.degree(v), v));
    for (r, &v) in by_degree.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    let forward: Vec<Vec<VertexId>> = (0..n as VertexId)
        .map(|u| {
            let mut f: Vec<VertexId> = g
                .neighbors_iter(u)
                .filter(|&v| rank[v as usize] > rank[u as usize])
                .collect();
            f.sort_unstable();
            f
        })
        .collect();
    let mut count = 0u64;
    for u in 0..n {
        for &v in &forward[u] {
            count += sorted_intersection_len(&forward[u], &forward[v as usize]) as u64;
        }
    }
    count
}

/// Lists every triangle of `g` exactly once as `(a, b, c)` with `a < b < c`.
pub fn list_triangles<G: GraphTopology>(g: &G) -> Vec<(VertexId, VertexId, VertexId)> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    for u in g.vertices_iter() {
        for v in g.neighbors_iter(u) {
            if v <= u {
                continue;
            }
            g.common_neighbors_into(u, v, &mut buf);
            for &w in &buf {
                if w > v {
                    out.push((u, v, w));
                }
            }
        }
    }
    out
}

fn sorted_intersection_len(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn triangle_with_tail() -> Graph {
        // Triangle 0-1-2, tail 2-3.
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn edge_index_enumerates_all_edges() {
        let g = triangle_with_tail();
        let idx = EdgeIndex::new(&g);
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        let all: Vec<_> = idx.all_endpoints().to_vec();
        assert_eq!(all, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn edge_id_lookup_both_orientations() {
        let g = triangle_with_tail();
        let idx = EdgeIndex::new(&g);
        let e = idx.edge_id(2, 0).unwrap();
        assert_eq!(idx.endpoints(e), (0, 2));
        assert_eq!(idx.edge_id(0, 2), Some(e));
        assert_eq!(idx.edge_id(1, 3), None);
        assert_eq!(idx.edge_id(3, 3), None);
    }

    #[test]
    fn supports_of_triangle_with_tail() {
        let g = triangle_with_tail();
        let (idx, sup) = edge_supports(&g);
        let s = |u, v| sup[idx.edge_id(u, v).unwrap() as usize];
        assert_eq!(s(0, 1), 1);
        assert_eq!(s(0, 2), 1);
        assert_eq!(s(1, 2), 1);
        assert_eq!(s(2, 3), 0);
    }

    #[test]
    fn triangle_count_small_graphs() {
        assert_eq!(triangle_count(&Graph::empty(5)), 0);
        assert_eq!(triangle_count(&Graph::complete(3)), 1);
        assert_eq!(triangle_count(&Graph::complete(5)), 10);
        assert_eq!(triangle_count(&triangle_with_tail()), 1);
        let c4 = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(triangle_count(&c4), 0);
    }

    #[test]
    fn list_triangles_matches_count() {
        let g = Graph::complete(6);
        let listed = list_triangles(&g);
        assert_eq!(listed.len() as u64, triangle_count(&g));
        assert_eq!(listed.len(), 20);
        for &(a, b, c) in &listed {
            assert!(a < b && b < c);
            assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
        }
    }

    #[test]
    fn support_sum_equals_three_times_triangles() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (2, 4),
                (4, 5),
                (5, 6),
                (4, 6),
                (2, 5),
            ],
        )
        .unwrap();
        let (_, sup) = edge_supports(&g);
        let sum: u64 = sup.iter().map(|&s| s as u64).sum();
        assert_eq!(sum, 3 * triangle_count(&g));
    }
}
