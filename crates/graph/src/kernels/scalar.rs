//! Portable scalar backend: the 4×-unrolled `u64` loops that were inlined in
//! `bitset.rs` before the kernel layer existed. Always available; the
//! reference implementation every SIMD arm must match bit-for-bit.

use super::Kernels;

pub(super) static TABLE: Kernels = Kernels {
    name: "scalar",
    intersect_count,
    intersection_len,
    difference,
    and_not_collect,
    popcount,
};

fn intersect_count(a: &[u64], b: &[u64], dst: &mut [u64]) -> usize {
    debug_assert!(a.len() == b.len() && a.len() == dst.len());
    let n = a.len();
    let mut count = 0usize;
    let mut i = 0;
    while i + 4 <= n {
        let (w0, w1) = (a[i] & b[i], a[i + 1] & b[i + 1]);
        let (w2, w3) = (a[i + 2] & b[i + 2], a[i + 3] & b[i + 3]);
        dst[i] = w0;
        dst[i + 1] = w1;
        dst[i + 2] = w2;
        dst[i + 3] = w3;
        count += (w0.count_ones() + w1.count_ones() + w2.count_ones() + w3.count_ones()) as usize;
        i += 4;
    }
    while i < n {
        let w = a[i] & b[i];
        dst[i] = w;
        count += w.count_ones() as usize;
        i += 1;
    }
    count
}

fn intersection_len(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut total = 0usize;
    let mut i = 0;
    while i + 4 <= n {
        total += (a[i] & b[i]).count_ones() as usize
            + (a[i + 1] & b[i + 1]).count_ones() as usize
            + (a[i + 2] & b[i + 2]).count_ones() as usize
            + (a[i + 3] & b[i + 3]).count_ones() as usize;
        i += 4;
    }
    while i < n {
        total += (a[i] & b[i]).count_ones() as usize;
        i += 1;
    }
    total
}

fn difference(a: &[u64], b: &[u64], dst: &mut [u64]) {
    debug_assert!(a.len() == b.len() && a.len() == dst.len());
    let n = a.len();
    let mut i = 0;
    while i + 4 <= n {
        dst[i] = a[i] & !b[i];
        dst[i + 1] = a[i + 1] & !b[i + 1];
        dst[i + 2] = a[i + 2] & !b[i + 2];
        dst[i + 3] = a[i + 3] & !b[i + 3];
        i += 4;
    }
    while i < n {
        dst[i] = a[i] & !b[i];
        i += 1;
    }
}

#[inline]
pub(crate) fn push_bits(wi: usize, mut w: u64, out: &mut Vec<usize>) {
    while w != 0 {
        let b = w.trailing_zeros() as usize;
        w &= w - 1;
        out.push(wi * 64 + b);
    }
}

fn and_not_collect(a: &[u64], mask: &[u64], out: &mut Vec<usize>) {
    debug_assert_eq!(a.len(), mask.len());
    let n = a.len();
    let mut i = 0;
    while i + 4 <= n {
        let (w0, w1) = (a[i] & !mask[i], a[i + 1] & !mask[i + 1]);
        let (w2, w3) = (a[i + 2] & !mask[i + 2], a[i + 3] & !mask[i + 3]);
        push_bits(i, w0, out);
        push_bits(i + 1, w1, out);
        push_bits(i + 2, w2, out);
        push_bits(i + 3, w3, out);
        i += 4;
    }
    while i < n {
        push_bits(i, a[i] & !mask[i], out);
        i += 1;
    }
}

fn popcount(a: &[u64]) -> usize {
    let n = a.len();
    let mut total = 0usize;
    let mut i = 0;
    while i + 4 <= n {
        total += (a[i].count_ones()
            + a[i + 1].count_ones()
            + a[i + 2].count_ones()
            + a[i + 3].count_ones()) as usize;
        i += 4;
    }
    while i < n {
        total += a[i].count_ones() as usize;
        i += 1;
    }
    total
}
