//! NEON backend (`aarch64`): 128-bit vector loops over 2 words at a time.
//!
//! # Safety
//!
//! Mirrors the AVX2 module: safe wrappers around `#[target_feature(enable =
//! "neon")]` functions, reachable only through
//! [`KernelBackend::table`](super::KernelBackend::table) after a positive
//! `is_aarch64_feature_detected!("neon")` check. NEON is mandatory in the
//! standard `aarch64` targets, so the arm is effectively always available
//! there — the detection gate keeps the soundness argument uniform across
//! backends. Kept deliberately minimal (no popcount vectorisation): `vcntq` +
//! horizontal adds only pay off on much wider loops, and `u64::count_ones`
//! already lowers to `cnt`/`addv` on aarch64.
#![allow(unsafe_code)]

use core::arch::aarch64::{vandq_u64, vbicq_u64, vld1q_u64, vst1q_u64};

use super::scalar::push_bits;
use super::Kernels;

pub(super) static TABLE: Kernels = Kernels {
    name: "neon",
    intersect_count,
    intersection_len,
    difference,
    and_not_collect,
    popcount,
};

fn intersect_count(a: &[u64], b: &[u64], dst: &mut [u64]) -> usize {
    // SAFETY: reachable only via a table gated on runtime neon detection.
    unsafe { intersect_count_impl(a, b, dst) }
}

fn intersection_len(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: as above.
    unsafe { intersection_len_impl(a, b) }
}

fn difference(a: &[u64], b: &[u64], dst: &mut [u64]) {
    // SAFETY: as above.
    unsafe { difference_impl(a, b, dst) }
}

fn and_not_collect(a: &[u64], mask: &[u64], out: &mut Vec<usize>) {
    // SAFETY: as above.
    unsafe { and_not_collect_impl(a, mask, out) }
}

fn popcount(a: &[u64]) -> usize {
    let mut total = 0usize;
    for &w in a {
        total += w.count_ones() as usize;
    }
    total
}

#[target_feature(enable = "neon")]
unsafe fn intersect_count_impl(a: &[u64], b: &[u64], dst: &mut [u64]) -> usize {
    debug_assert!(a.len() == b.len() && a.len() == dst.len());
    let n = a.len();
    let mut count = 0usize;
    let mut i = 0;
    while i + 2 <= n {
        let va = vld1q_u64(a.as_ptr().add(i));
        let vb = vld1q_u64(b.as_ptr().add(i));
        vst1q_u64(dst.as_mut_ptr().add(i), vandq_u64(va, vb));
        count += (dst[i].count_ones() + dst[i + 1].count_ones()) as usize;
        i += 2;
    }
    while i < n {
        let w = a[i] & b[i];
        dst[i] = w;
        count += w.count_ones() as usize;
        i += 1;
    }
    count
}

#[target_feature(enable = "neon")]
unsafe fn intersection_len_impl(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut total = 0usize;
    let mut buf = [0u64; 2];
    let mut i = 0;
    while i + 2 <= n {
        let va = vld1q_u64(a.as_ptr().add(i));
        let vb = vld1q_u64(b.as_ptr().add(i));
        vst1q_u64(buf.as_mut_ptr(), vandq_u64(va, vb));
        total += (buf[0].count_ones() + buf[1].count_ones()) as usize;
        i += 2;
    }
    while i < n {
        total += (a[i] & b[i]).count_ones() as usize;
        i += 1;
    }
    total
}

#[target_feature(enable = "neon")]
unsafe fn difference_impl(a: &[u64], b: &[u64], dst: &mut [u64]) {
    debug_assert!(a.len() == b.len() && a.len() == dst.len());
    let n = a.len();
    let mut i = 0;
    while i + 2 <= n {
        let va = vld1q_u64(a.as_ptr().add(i));
        let vb = vld1q_u64(b.as_ptr().add(i));
        // vbic computes a & !b — exactly the difference kernel.
        vst1q_u64(dst.as_mut_ptr().add(i), vbicq_u64(va, vb));
        i += 2;
    }
    while i < n {
        dst[i] = a[i] & !b[i];
        i += 1;
    }
}

#[target_feature(enable = "neon")]
unsafe fn and_not_collect_impl(a: &[u64], mask: &[u64], out: &mut Vec<usize>) {
    debug_assert_eq!(a.len(), mask.len());
    let n = a.len();
    let mut buf = [0u64; 2];
    let mut i = 0;
    while i + 2 <= n {
        let va = vld1q_u64(a.as_ptr().add(i));
        let vm = vld1q_u64(mask.as_ptr().add(i));
        vst1q_u64(buf.as_mut_ptr(), vbicq_u64(va, vm));
        if buf[0] | buf[1] != 0 {
            push_bits(i, buf[0], out);
            push_bits(i + 1, buf[1], out);
        }
        i += 2;
    }
    while i < n {
        push_bits(i, a[i] & !mask[i], out);
        i += 1;
    }
}
