//! AVX2 backend (`x86_64`): 256-bit vector loops over 4 words at a time.
//!
//! # Safety
//!
//! Every kernel here is a safe wrapper around an `unsafe fn` annotated
//! `#[target_feature(enable = "avx2,popcnt")]`. Calling such a function on a
//! CPU without those features is undefined behaviour, which is why this
//! module is private and its [`TABLE`] is only reachable through
//! [`KernelBackend::table`](super::KernelBackend::table) — that accessor
//! returns `None` unless `is_x86_feature_detected!` confirmed both features
//! at runtime. The `popcnt` enable also matters for speed: inside these
//! functions `u64::count_ones` compiles to the hardware `popcnt` instruction
//! instead of the ~15-instruction SWAR fallback the portable scalar build
//! gets, which is a large part of the backend's win on the counting kernels.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_loadu_si256, _mm256_storeu_si256,
    _mm256_testz_si256,
};

use super::scalar::push_bits;
use super::Kernels;

pub(super) static TABLE: Kernels = Kernels {
    name: "avx2",
    intersect_count,
    intersection_len,
    difference,
    and_not_collect,
    popcount,
};

fn intersect_count(a: &[u64], b: &[u64], dst: &mut [u64]) -> usize {
    // SAFETY: reachable only via a table gated on runtime avx2+popcnt
    // detection (see module docs).
    unsafe { intersect_count_impl(a, b, dst) }
}

fn intersection_len(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: as above.
    unsafe { intersection_len_impl(a, b) }
}

fn difference(a: &[u64], b: &[u64], dst: &mut [u64]) {
    // SAFETY: as above.
    unsafe { difference_impl(a, b, dst) }
}

fn and_not_collect(a: &[u64], mask: &[u64], out: &mut Vec<usize>) {
    // SAFETY: as above.
    unsafe { and_not_collect_impl(a, mask, out) }
}

fn popcount(a: &[u64]) -> usize {
    // SAFETY: as above.
    unsafe { popcount_impl(a) }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn intersect_count_impl(a: &[u64], b: &[u64], dst: &mut [u64]) -> usize {
    debug_assert!(a.len() == b.len() && a.len() == dst.len());
    let n = a.len();
    let mut count = 0usize;
    let mut i = 0;
    while i + 4 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        let vw = _mm256_and_si256(va, vb);
        _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, vw);
        count += (dst[i].count_ones()
            + dst[i + 1].count_ones()
            + dst[i + 2].count_ones()
            + dst[i + 3].count_ones()) as usize;
        i += 4;
    }
    while i < n {
        let w = a[i] & b[i];
        dst[i] = w;
        count += w.count_ones() as usize;
        i += 1;
    }
    count
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn intersection_len_impl(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut total = 0usize;
    let mut buf = [0u64; 4];
    let mut i = 0;
    while i + 4 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, _mm256_and_si256(va, vb));
        total +=
            (buf[0].count_ones() + buf[1].count_ones() + buf[2].count_ones() + buf[3].count_ones())
                as usize;
        i += 4;
    }
    while i < n {
        total += (a[i] & b[i]).count_ones() as usize;
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn difference_impl(a: &[u64], b: &[u64], dst: &mut [u64]) {
    debug_assert!(a.len() == b.len() && a.len() == dst.len());
    let n = a.len();
    let mut i = 0;
    while i + 4 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
        // andnot computes !b & a — exactly the difference kernel.
        let vw = _mm256_andnot_si256(vb, va);
        _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, vw);
        i += 4;
    }
    while i < n {
        dst[i] = a[i] & !b[i];
        i += 1;
    }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn and_not_collect_impl(a: &[u64], mask: &[u64], out: &mut Vec<usize>) {
    debug_assert_eq!(a.len(), mask.len());
    let n = a.len();
    let mut buf = [0u64; 4];
    let mut i = 0;
    while i + 4 <= n {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vm = _mm256_loadu_si256(mask.as_ptr().add(i) as *const __m256i);
        let vw = _mm256_andnot_si256(vm, va);
        // Branch lists are usually sparse relative to the word row, so an
        // all-zero 256-bit block is the common case — testz skips the store
        // and the four bit-extraction loops in one instruction.
        if _mm256_testz_si256(vw, vw) == 0 {
            _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, vw);
            push_bits(i, buf[0], out);
            push_bits(i + 1, buf[1], out);
            push_bits(i + 2, buf[2], out);
            push_bits(i + 3, buf[3], out);
        }
        i += 4;
    }
    while i < n {
        push_bits(i, a[i] & !mask[i], out);
        i += 1;
    }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn popcount_impl(a: &[u64]) -> usize {
    let n = a.len();
    let mut total = 0usize;
    let mut i = 0;
    while i + 4 <= n {
        total += (a[i].count_ones()
            + a[i + 1].count_ones()
            + a[i + 2].count_ones()
            + a[i + 3].count_ones()) as usize;
        i += 4;
    }
    while i < n {
        total += a[i].count_ones() as usize;
        i += 1;
    }
    total
}
