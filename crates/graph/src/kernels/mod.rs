//! Runtime-dispatched word kernels: scalar baseline plus explicit SIMD arms.
//!
//! Every hot path of the enumeration engine bottoms out in a handful of fused
//! word loops over `&[u64]` slices — intersection with popcount, and-not,
//! branch-list collection. This module extracts those loops behind a
//! [`Kernels`] function-pointer table with three implementations:
//!
//! * **`scalar`** — the portable 4×-unrolled `u64` loops (always available;
//!   bit-identical to the pre-backend code),
//! * **`avx2`** — explicit `std::arch` 256-bit AVX2 on `x86_64` (requires the
//!   `avx2` and `popcnt` CPU features at runtime),
//! * **`neon`** — explicit `std::arch` 128-bit NEON on `aarch64`.
//!
//! # Dispatch rules
//!
//! The backend is resolved **once per process** and cached in a [`OnceLock`]:
//! after the first kernel call the hot loops go through plain function
//! pointers with zero per-call dispatch logic. Resolution order:
//!
//! 1. an explicit [`install`] call (the CLI/serve `--kernel` flag) wins,
//! 2. otherwise the [`ENV_VAR`] environment variable (`MCE_KERNEL=scalar`,
//!    `avx2`, `neon`) if set to a *supported* backend — front-ends validate
//!    the variable eagerly via [`from_env`] so typos and unsupported arms
//!    become typed errors; the lazy library path ignores an invalid value and
//!    falls back to detection,
//! 3. otherwise runtime feature detection ([`KernelBackend::detect`]): the
//!    widest supported SIMD arm, scalar as the universal fallback.
//!
//! # Equal-length contract
//!
//! Every function in the table operates on **equal-length** word slices.
//! Callers — the fused [`BitSet`](crate::BitSet) kernels — slice both
//! operands to the shared prefix and handle ragged tails themselves, so each
//! backend only has to be bit-identical on the dense common part. This keeps
//! the out-of-range/tail semantics in exactly one place (`bitset.rs`) and
//! makes backend equivalence a pure word-math property (tested by proptest in
//! `tests/property.rs`).

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;
mod scalar;

pub(crate) use scalar::push_bits;

use std::fmt;
use std::sync::OnceLock;

/// Environment variable overriding backend selection (`scalar|avx2|neon`).
pub const ENV_VAR: &str = "MCE_KERNEL";

/// Function-pointer table for the fused word kernels.
///
/// All slices are equal-length (see the module-level contract); `dst` is
/// fully overwritten. The table is `'static` and the hot paths fetch it once
/// per fused operation via [`active`], so the only per-call cost over a
/// direct call is one indirect jump.
#[derive(Clone, Copy, Debug)]
pub struct Kernels {
    /// Backend name as reported in stats, metrics and bench cells.
    pub name: &'static str,
    /// `dst = a & b`; returns the popcount of the result.
    pub intersect_count: fn(a: &[u64], b: &[u64], dst: &mut [u64]) -> usize,
    /// Popcount of `a & b` without materialising it.
    pub intersection_len: fn(a: &[u64], b: &[u64]) -> usize,
    /// `dst = a & !b`.
    pub difference: fn(a: &[u64], b: &[u64], dst: &mut [u64]),
    /// Appends the bit positions of `a & !mask` in increasing order
    /// (word `i`, bit `b` → `i * 64 + b`).
    pub and_not_collect: fn(a: &[u64], mask: &[u64], out: &mut Vec<usize>),
    /// Total popcount of `a`.
    pub popcount: fn(a: &[u64]) -> usize,
}

/// A selectable kernel backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// Portable 4×-unrolled `u64` loops; always available.
    Scalar,
    /// 256-bit AVX2 (`x86_64` with the `avx2` + `popcnt` features).
    Avx2,
    /// 128-bit NEON (`aarch64`).
    Neon,
}

impl KernelBackend {
    /// Every backend name the override syntax accepts, supported or not.
    pub const ALL: [KernelBackend; 3] = [
        KernelBackend::Scalar,
        KernelBackend::Avx2,
        KernelBackend::Neon,
    ];

    /// The backend's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Neon => "neon",
        }
    }

    /// Parses a backend name (case-insensitive).
    pub fn parse(s: &str) -> Option<KernelBackend> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelBackend::Scalar),
            "avx2" => Some(KernelBackend::Avx2),
            "neon" => Some(KernelBackend::Neon),
            _ => None,
        }
    }

    /// Whether this backend can run on the current host (compile target ×
    /// runtime CPU feature detection).
    pub fn is_supported(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            KernelBackend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("popcnt")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            KernelBackend::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// The widest backend supported on this host.
    pub fn detect() -> KernelBackend {
        if KernelBackend::Avx2.is_supported() {
            KernelBackend::Avx2
        } else if KernelBackend::Neon.is_supported() {
            KernelBackend::Neon
        } else {
            KernelBackend::Scalar
        }
    }

    /// All backends supported on this host (scalar first).
    pub fn available() -> Vec<KernelBackend> {
        KernelBackend::ALL
            .into_iter()
            .filter(|b| b.is_supported())
            .collect()
    }

    /// This backend's kernel table, or `None` when the host cannot run it.
    ///
    /// Gating the table on [`KernelBackend::is_supported`] is what keeps the
    /// `std::arch` arms sound: their `#[target_feature]` functions are only
    /// reachable through a table that is never handed out without a positive
    /// runtime feature check.
    pub fn table(self) -> Option<&'static Kernels> {
        match self {
            KernelBackend::Scalar => Some(&scalar::TABLE),
            KernelBackend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    self.is_supported().then_some(&avx2::TABLE)
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    None
                }
            }
            KernelBackend::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    self.is_supported().then_some(&neon::TABLE)
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    None
                }
            }
        }
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a backend request could not be honoured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The name is not one of `scalar|avx2|neon`.
    Unknown(String),
    /// The backend exists but this host cannot run it.
    Unsupported(KernelBackend),
    /// A different backend was already resolved for this process.
    AlreadyActive {
        /// The backend the caller asked for.
        requested: KernelBackend,
        /// The backend already locked in.
        active: KernelBackend,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Unknown(name) => {
                write!(
                    f,
                    "unknown kernel backend '{name}' (expected scalar, avx2 or neon)"
                )
            }
            KernelError::Unsupported(b) => {
                write!(f, "kernel backend '{b}' is not supported on this host")
            }
            KernelError::AlreadyActive { requested, active } => write!(
                f,
                "kernel backend '{requested}' requested but '{active}' is already active \
                 for this process"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

static ACTIVE: OnceLock<(KernelBackend, &'static Kernels)> = OnceLock::new();

fn resolve() -> (KernelBackend, &'static Kernels) {
    // The lazy library path tolerates a bad env value (falls back to
    // detection); front-ends call `from_env` eagerly to turn the same
    // condition into a typed error before any kernel runs.
    let backend = from_env()
        .ok()
        .flatten()
        .unwrap_or_else(KernelBackend::detect);
    let table = backend.table().unwrap_or_else(|| scalar_table());
    (backend, table)
}

fn scalar_table() -> &'static Kernels {
    &scalar::TABLE
}

/// The process-wide kernel table, resolving it on first use.
#[inline]
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(resolve).1
}

/// The process-wide backend, resolving it on first use.
pub fn active_backend() -> KernelBackend {
    ACTIVE.get_or_init(resolve).0
}

/// Reads [`ENV_VAR`] strictly: `Ok(None)` when unset, a typed error for an
/// unknown name or an unsupported backend.
pub fn from_env() -> Result<Option<KernelBackend>, KernelError> {
    match std::env::var(ENV_VAR) {
        Ok(value) => {
            let backend =
                KernelBackend::parse(&value).ok_or_else(|| KernelError::Unknown(value.clone()))?;
            if !backend.is_supported() {
                return Err(KernelError::Unsupported(backend));
            }
            Ok(Some(backend))
        }
        Err(_) => Ok(None),
    }
}

/// Locks the process-wide backend to `backend`.
///
/// Idempotent when the same backend is requested again; fails with
/// [`KernelError::Unsupported`] when the host cannot run it and
/// [`KernelError::AlreadyActive`] when a different backend has already been
/// resolved (front-ends call this before any kernel use, so in practice the
/// requested backend wins).
pub fn install(backend: KernelBackend) -> Result<(), KernelError> {
    let table = backend.table().ok_or(KernelError::Unsupported(backend))?;
    let (got, _) = *ACTIVE.get_or_init(|| (backend, table));
    if got != backend {
        return Err(KernelError::AlreadyActive {
            requested: backend,
            active: got,
        });
    }
    Ok(())
}

/// Hints the CPU to pull the start of `row` into cache.
///
/// Used by the branch loop to prefetch the *next* branch vertex's adjacency
/// row while the current child is being derived. A pure performance hint —
/// no-op on architectures without an explicit prefetch instruction, and safe
/// for any slice (prefetching never faults).
#[inline]
#[allow(unsafe_code)]
pub fn prefetch(row: &[u64]) {
    #[cfg(target_arch = "x86_64")]
    if let Some(first) = row.first() {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        // SAFETY: _mm_prefetch is a hint; it never faults, for any address,
        // and requires only SSE which is part of the x86_64 baseline.
        unsafe { _mm_prefetch::<_MM_HINT_T0>(first as *const u64 as *const i8) };
        if row.len() > 8 {
            // A second line covers rows past one cache line (8 words).
            // SAFETY: as above; the index is in bounds by the length check.
            unsafe { _mm_prefetch::<_MM_HINT_T0>(&row[8] as *const u64 as *const i8) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = row;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for b in KernelBackend::ALL {
            assert_eq!(KernelBackend::parse(b.name()), Some(b));
            assert_eq!(KernelBackend::parse(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(KernelBackend::parse("avx512"), None);
        assert_eq!(KernelBackend::parse(""), None);
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(KernelBackend::Scalar.is_supported());
        assert!(KernelBackend::available().contains(&KernelBackend::Scalar));
        assert!(KernelBackend::Scalar.table().is_some());
    }

    #[test]
    fn detect_returns_a_supported_backend_with_a_table() {
        let b = KernelBackend::detect();
        assert!(b.is_supported());
        assert!(b.table().is_some());
    }

    #[test]
    fn unsupported_backend_has_no_table() {
        for b in KernelBackend::ALL {
            if !b.is_supported() {
                assert!(b.table().is_none(), "{b} unsupported but has a table");
            }
        }
    }

    #[test]
    fn error_messages_name_the_backend() {
        let e = KernelError::Unknown("sse9".into());
        assert!(e.to_string().contains("sse9"));
        let e = KernelError::Unsupported(KernelBackend::Neon);
        assert!(e.to_string().contains("neon"));
        let e = KernelError::AlreadyActive {
            requested: KernelBackend::Scalar,
            active: KernelBackend::Avx2,
        };
        let msg = e.to_string();
        assert!(msg.contains("scalar") && msg.contains("avx2"));
    }

    #[test]
    fn active_backend_is_supported_and_stable() {
        let first = active_backend();
        assert!(first.is_supported());
        assert_eq!(active_backend(), first, "resolution is process-wide");
        assert_eq!(active().name, first.name());
        // Installing the already-active backend is idempotent…
        assert_eq!(install(first), Ok(()));
        // …and installing a different (supported) one reports the conflict.
        if let Some(&other) = KernelBackend::available().iter().find(|&&b| b != first) {
            assert_eq!(
                install(other),
                Err(KernelError::AlreadyActive {
                    requested: other,
                    active: first,
                })
            );
        }
    }

    #[test]
    fn prefetch_accepts_any_slice() {
        prefetch(&[]);
        prefetch(&[1]);
        prefetch(&vec![0u64; 64]);
    }

    /// Cross-backend equivalence smoke test (the exhaustive version lives in
    /// `tests/property.rs`): every available backend computes identical
    /// results on a word pattern with ragged-tail-shaped data.
    #[test]
    fn all_available_backends_agree() {
        let a: Vec<u64> = (0..37u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(i as u32))
            .collect();
        let b: Vec<u64> = (0..37u64)
            .map(|i| i.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) | (1 << (i % 64)))
            .collect();
        let scalar = KernelBackend::Scalar.table().unwrap();
        let mut want_dst = vec![0u64; a.len()];
        let want_count = (scalar.intersect_count)(&a, &b, &mut want_dst);
        let want_len = (scalar.intersection_len)(&a, &b);
        let mut want_diff = vec![0u64; a.len()];
        (scalar.difference)(&a, &b, &mut want_diff);
        let mut want_bits = Vec::new();
        (scalar.and_not_collect)(&a, &b, &mut want_bits);
        let want_pop = (scalar.popcount)(&a);

        for backend in KernelBackend::available() {
            let k = backend.table().unwrap();
            let mut dst = vec![!0u64; a.len()];
            assert_eq!(
                (k.intersect_count)(&a, &b, &mut dst),
                want_count,
                "{backend}"
            );
            assert_eq!(dst, want_dst, "{backend}");
            assert_eq!((k.intersection_len)(&a, &b), want_len, "{backend}");
            let mut diff = vec![!0u64; a.len()];
            (k.difference)(&a, &b, &mut diff);
            assert_eq!(diff, want_diff, "{backend}");
            let mut bits = Vec::new();
            (k.and_not_collect)(&a, &b, &mut bits);
            assert_eq!(bits, want_bits, "{backend}");
            assert_eq!((k.popcount)(&a), want_pop, "{backend}");
        }
    }
}
