//! Incremental construction of [`Graph`]s from arbitrary vertex labels.

use std::collections::HashMap;

use crate::error::GraphError;
use crate::graph::{Graph, VertexId};

/// A forgiving, incremental graph builder.
///
/// The builder accepts edges with arbitrary `u64` vertex labels (so raw ids
/// from dataset files can be used directly), assigns dense `0..n` identifiers
/// in first-seen order, drops self-loops and collapses duplicates when
/// [`GraphBuilder::build`] is called.
///
/// ```
/// use mce_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_edge(10, 20);
/// b.add_edge(20, 30);
/// b.add_edge(10, 20); // duplicate, collapsed
/// let g = b.build().unwrap();
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    labels: HashMap<u64, VertexId>,
    label_of: Vec<u64>,
    edges: Vec<(VertexId, VertexId)>,
    isolated: Vec<u64>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder and pre-registers the labels `0..n` so that the
    /// resulting graph has exactly `n` vertices even if some are isolated.
    pub fn with_num_vertices(n: usize) -> Self {
        let mut b = Self::new();
        for v in 0..n as u64 {
            b.intern(v);
        }
        b
    }

    fn intern(&mut self, label: u64) -> VertexId {
        if let Some(&id) = self.labels.get(&label) {
            return id;
        }
        let id = self.label_of.len() as VertexId;
        self.labels.insert(label, id);
        self.label_of.push(label);
        id
    }

    /// Registers a vertex without any incident edge.
    pub fn add_vertex(&mut self, label: u64) -> VertexId {
        let id = self.intern(label);
        self.isolated.push(label);
        id
    }

    /// Adds an undirected edge between the vertices labelled `u` and `v`.
    ///
    /// Self-loops are remembered only as vertex registrations.
    pub fn add_edge(&mut self, u: u64, v: u64) {
        let iu = self.intern(u);
        let iv = self.intern(v);
        if iu != iv {
            self.edges.push((iu, iv));
        }
    }

    /// Number of distinct vertex labels seen so far.
    pub fn num_vertices(&self) -> usize {
        self.label_of.len()
    }

    /// Number of edge insertions (before deduplication).
    pub fn num_edge_insertions(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the builder into a CSR [`Graph`] plus the label of each vertex id.
    pub fn build_with_labels(self) -> Result<(Graph, Vec<u64>), GraphError> {
        let n = self.label_of.len();
        let g = Graph::from_edges(n, self.edges)?;
        Ok((g, self.label_of))
    }

    /// Finalises the builder into a CSR [`Graph`].
    pub fn build(self) -> Result<Graph, GraphError> {
        Ok(self.build_with_labels()?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_dense_relabeling() {
        let mut b = GraphBuilder::new();
        b.add_edge(100, 7);
        b.add_edge(7, 42);
        let (g, labels) = b.build_with_labels().unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(labels, vec![100, 7, 42]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn duplicates_and_self_loops_collapsed() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        b.add_edge(1, 1);
        let g = b.build().unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn with_num_vertices_keeps_isolated_vertices() {
        let mut b = GraphBuilder::with_num_vertices(5);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn add_vertex_registers_isolated_label() {
        let mut b = GraphBuilder::new();
        b.add_vertex(9);
        b.add_edge(1, 2);
        let (g, labels) = b.build_with_labels().unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(labels[0], 9);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn counts_before_build() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.num_vertices(), 2);
        assert_eq!(b.num_edge_insertions(), 2);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }
}
