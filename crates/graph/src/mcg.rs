//! The `.mcg` binary on-disk graph format: versioned, little-endian,
//! checksummed, loadable in `O(n + m)` with no parse step.
//!
//! Text edge lists are convenient but slow and memory-hungry to load at
//! production scale: every line is tokenised, every edge passes through a
//! `Vec<Vec<VertexId>>` intermediate, and ids get re-sorted. The `.mcg`
//! format instead stores the [`Graph`]'s CSR arrays directly, so the loader
//! streams bytes straight into the final offset/adjacency vectors and hands
//! them to [`Graph::from_csr_parts`] — one validation pass, zero intermediate
//! structures. A 1M-vertex / 10M-edge graph loads from ~88 MB of sections
//! into ~88 MB of arrays.
//!
//! The byte-level layout is specified normatively in `docs/FORMAT.md`; this
//! module is the reference implementation. In brief:
//!
//! ```text
//! magic (8)  "\x89MCG\r\n\x1a\n"
//! header (32, little-endian)
//!   version u32   flags u32   n u64   m u64   section_count u32   reserved u32
//! section table (section_count × 32)
//!   id u32   reserved u32   offset u64   len u64   checksum u64 (FNV-1a 64)
//! section payloads, in increasing offset order
//!   OFFSETS   (id 1): (n + 1) × u64   CSR offset array
//!   ADJACENCY (id 2): 2m × u32        concatenated sorted neighbour lists
//! ```
//!
//! Compatibility rules: readers reject unknown *versions* and unknown *flag
//! bits* but skip unknown *section ids*, so future minor additions (e.g. a
//! vertex-label section) stay readable by old binaries only if they bump
//! nothing; anything that changes the meaning of existing sections must bump
//! `version`. All multi-byte values are little-endian everywhere.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::GraphError;
use crate::graph::{Graph, VertexId};

/// The 8-byte file magic. Mirrors PNG's design: a high bit to catch 7-bit
/// transports, "MCG", CRLF and LF to catch newline translation, ^Z to stop
/// DOS-style `type`.
pub const MAGIC: [u8; 8] = *b"\x89MCG\r\n\x1a\n";

/// Highest (and currently only) format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Section id of the CSR offset array ((n + 1) × u64).
pub const SECTION_OFFSETS: u32 = 1;

/// Section id of the concatenated adjacency array (2m × u32).
pub const SECTION_ADJACENCY: u32 = 2;

const HEADER_LEN: u64 = 32;
const TABLE_ENTRY_LEN: u64 = 32;
/// Upper bound on `section_count` accepted by the reader — a corrupt header
/// must not be able to request an enormous table allocation.
const MAX_SECTIONS: u32 = 64;
/// Streaming chunk size; a multiple of 8 so fixed-width values never straddle
/// a chunk boundary once section lengths are validated.
const CHUNK: usize = 64 * 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a64(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Total encoded size in bytes of `g` as an `.mcg` file.
pub fn encoded_len(g: &Graph) -> u64 {
    let offsets_len = (g.n() as u64 + 1) * 8;
    let adjacency_len = g.csr_adjacency().len() as u64 * 4;
    8 + HEADER_LEN + 2 * TABLE_ENTRY_LEN + offsets_len + adjacency_len
}

/// Writes `g` to `w` in `.mcg` format.
///
/// Single forward pass over the output (no `Seek` required): section sizes
/// are known up front and section checksums are computed in a cheap
/// in-memory pre-pass over the CSR arrays.
///
/// # Errors
/// Only [`GraphError::Io`] — an in-memory [`Graph`] always encodes.
pub fn write_mcg<W: Write>(g: &Graph, w: W) -> Result<(), GraphError> {
    let mut w = w;
    let n = g.n() as u64;
    let m = g.m() as u64;
    let offsets = g.csr_offsets();
    let adjacency = g.csr_adjacency();
    let offsets_len = (n + 1) * 8;
    let adjacency_len = adjacency.len() as u64 * 4;
    let offsets_start = 8 + HEADER_LEN + 2 * TABLE_ENTRY_LEN;
    let adjacency_start = offsets_start + offsets_len;

    // Pre-pass: section checksums over the encoded little-endian bytes.
    let mut offsets_sum = FNV_OFFSET;
    for &o in offsets {
        offsets_sum = fnv1a64(offsets_sum, &(o as u64).to_le_bytes());
    }
    let mut adjacency_sum = FNV_OFFSET;
    for &v in adjacency {
        adjacency_sum = fnv1a64(adjacency_sum, &v.to_le_bytes());
    }

    // Magic + header.
    w.write_all(&MAGIC)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?; // flags
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    w.write_all(&2u32.to_le_bytes())?; // section_count
    w.write_all(&0u32.to_le_bytes())?; // reserved

    // Section table.
    for (id, offset, len, sum) in [
        (SECTION_OFFSETS, offsets_start, offsets_len, offsets_sum),
        (
            SECTION_ADJACENCY,
            adjacency_start,
            adjacency_len,
            adjacency_sum,
        ),
    ] {
        w.write_all(&id.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?; // reserved
        w.write_all(&offset.to_le_bytes())?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&sum.to_le_bytes())?;
    }

    // Payloads, chunk-buffered.
    let mut buf = Vec::with_capacity(CHUNK);
    for &o in offsets {
        buf.extend_from_slice(&(o as u64).to_le_bytes());
        if buf.len() >= CHUNK {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    for &v in adjacency {
        buf.extend_from_slice(&v.to_le_bytes());
        if buf.len() >= CHUNK {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Writes `g` to the file at `path` in `.mcg` format (buffered).
pub fn write_mcg_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    let file = File::create(path)?;
    write_mcg(g, BufWriter::new(file))
}

/// One parsed section-table entry.
struct SectionEntry {
    id: u32,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// Reads exactly `buf.len()` bytes, mapping premature EOF to a typed
/// [`GraphError::InvalidData`] instead of a bare I/O error.
fn read_exact_or_truncated<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    what: &str,
) -> Result<(), GraphError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            GraphError::InvalidData {
                message: format!("truncated file while reading {what}"),
            }
        } else {
            GraphError::Io(e)
        }
    })
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Streams the `len`-byte payload of one section, hashing every byte and
/// handing each chunk to `decode`. Chunks are always a multiple of 8 bytes
/// except the last, so fixed-width values never straddle chunks.
fn stream_section<R: Read>(
    r: &mut R,
    len: u64,
    section: &'static str,
    expected_sum: u64,
    mut decode: impl FnMut(&[u8]),
) -> Result<(), GraphError> {
    let mut remaining = len;
    let mut buf = [0u8; CHUNK];
    let mut sum = FNV_OFFSET;
    while remaining > 0 {
        let take = remaining.min(CHUNK as u64) as usize;
        read_exact_or_truncated(r, &mut buf[..take], section)?;
        sum = fnv1a64(sum, &buf[..take]);
        decode(&buf[..take]);
        remaining -= take as u64;
    }
    if sum != expected_sum {
        return Err(GraphError::ChecksumMismatch { section });
    }
    Ok(())
}

/// Discards `len` bytes from the stream (gaps between sections, unknown
/// sections).
fn skip_bytes<R: Read>(r: &mut R, len: u64, what: &str) -> Result<(), GraphError> {
    let mut remaining = len;
    let mut buf = [0u8; CHUNK];
    while remaining > 0 {
        let take = remaining.min(CHUNK as u64) as usize;
        read_exact_or_truncated(r, &mut buf[..take], what)?;
        remaining -= take as u64;
    }
    Ok(())
}

fn invalid(message: impl Into<String>) -> GraphError {
    GraphError::InvalidData {
        message: message.into(),
    }
}

/// Reads a graph from an `.mcg` stream.
///
/// The loader is fully streamed: it never buffers a whole section, decoding
/// 64 KiB chunks straight into the final CSR vectors while checksumming, then
/// validates every CSR invariant via [`Graph::from_csr_parts`]. Peak memory
/// is the two result arrays plus one chunk.
///
/// # Errors
/// [`GraphError::BadMagic`] for foreign files,
/// [`GraphError::UnsupportedVersion`] for newer format versions,
/// [`GraphError::ChecksumMismatch`] for payload corruption,
/// [`GraphError::InvalidData`] for truncation or structural corruption, and
/// the [`Graph::from_csr_parts`] errors for invalid topology.
pub fn read_mcg<R: Read>(r: R) -> Result<Graph, GraphError> {
    let mut r = r;

    let mut magic = [0u8; 8];
    read_exact_or_truncated(&mut r, &mut magic, "magic")?;
    if magic != MAGIC {
        return Err(GraphError::BadMagic);
    }

    let mut header = [0u8; HEADER_LEN as usize];
    read_exact_or_truncated(&mut r, &mut header, "header")?;
    let version = le_u32(&header[0..4]);
    if version == 0 || version > FORMAT_VERSION {
        return Err(GraphError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let flags = le_u32(&header[4..8]);
    if flags != 0 {
        return Err(invalid(format!("unsupported flag bits {flags:#010x}")));
    }
    let n = le_u64(&header[8..16]);
    let m = le_u64(&header[16..24]);
    let section_count = le_u32(&header[24..28]);
    if n > u32::MAX as u64 {
        return Err(GraphError::TooManyVertices(n as usize));
    }
    if section_count > MAX_SECTIONS {
        return Err(invalid(format!(
            "section count {section_count} exceeds the limit of {MAX_SECTIONS}"
        )));
    }

    let mut entries = Vec::with_capacity(section_count as usize);
    let mut entry = [0u8; TABLE_ENTRY_LEN as usize];
    for _ in 0..section_count {
        read_exact_or_truncated(&mut r, &mut entry, "section table")?;
        entries.push(SectionEntry {
            id: le_u32(&entry[0..4]),
            offset: le_u64(&entry[8..16]),
            len: le_u64(&entry[16..24]),
            checksum: le_u64(&entry[24..32]),
        });
    }

    let expected_offsets_len = (n + 1) * 8;
    let expected_adjacency_len = m
        .checked_mul(8)
        .ok_or_else(|| invalid("edge count overflow"))?;

    let mut offsets: Option<Vec<usize>> = None;
    let mut adjacency: Option<Vec<VertexId>> = None;
    // Sections are streamed in file order; `pos` tracks the read cursor so
    // table offsets can be honoured without Seek.
    let mut pos = 8 + HEADER_LEN + section_count as u64 * TABLE_ENTRY_LEN;
    for e in &entries {
        if e.offset < pos {
            return Err(invalid(format!(
                "section {} at offset {} overlaps earlier data ending at {pos} \
                 (sections must appear in increasing offset order)",
                e.id, e.offset
            )));
        }
        skip_bytes(&mut r, e.offset - pos, "inter-section gap")?;
        match e.id {
            SECTION_OFFSETS => {
                if offsets.is_some() {
                    return Err(invalid("duplicate OFFSETS section"));
                }
                if e.len != expected_offsets_len {
                    return Err(invalid(format!(
                        "OFFSETS section length {} does not match header n = {n} \
                         (expected {expected_offsets_len})",
                        e.len
                    )));
                }
                let mut out: Vec<usize> = Vec::with_capacity((n as usize + 1).min(CHUNK));
                let mut bad_offset: Option<u64> = None;
                stream_section(&mut r, e.len, "offsets", e.checksum, |chunk| {
                    for bytes in chunk.chunks_exact(8) {
                        let v = le_u64(bytes);
                        if usize::try_from(v).is_ok() {
                            out.push(v as usize);
                        } else if bad_offset.is_none() {
                            bad_offset = Some(v);
                        }
                    }
                })?;
                if let Some(v) = bad_offset {
                    return Err(invalid(format!("offset value {v} exceeds usize")));
                }
                offsets = Some(out);
            }
            SECTION_ADJACENCY => {
                if adjacency.is_some() {
                    return Err(invalid("duplicate ADJACENCY section"));
                }
                if e.len != expected_adjacency_len {
                    return Err(invalid(format!(
                        "ADJACENCY section length {} does not match header m = {m} \
                         (expected {expected_adjacency_len})",
                        e.len
                    )));
                }
                let mut out: Vec<VertexId> = Vec::with_capacity((2 * m as usize).min(CHUNK));
                stream_section(&mut r, e.len, "adjacency", e.checksum, |chunk| {
                    for bytes in chunk.chunks_exact(4) {
                        out.push(le_u32(bytes));
                    }
                })?;
                adjacency = Some(out);
            }
            // Unknown section: skip the payload, stay readable (see the
            // compatibility rules in the module docs / docs/FORMAT.md).
            _ => skip_bytes(&mut r, e.len, "unknown section")?,
        }
        pos = e.offset + e.len;
    }

    let offsets = offsets.ok_or_else(|| invalid("missing OFFSETS section"))?;
    let adjacency = adjacency.ok_or_else(|| invalid("missing ADJACENCY section"))?;
    let g = Graph::from_csr_parts(offsets, adjacency)?;
    if g.n() as u64 != n {
        return Err(invalid(format!(
            "header declares {n} vertices but OFFSETS encodes {}",
            g.n()
        )));
    }
    if g.m() as u64 != m {
        return Err(invalid(format!(
            "header declares {m} edges but ADJACENCY encodes {}",
            g.m()
        )));
    }
    Ok(g)
}

/// Reads a graph from the `.mcg` file at `path` (buffered).
pub fn read_mcg_file<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    let file = File::open(path)?;
    read_mcg(BufReader::new(file))
}

/// Whether `bytes` begin with the `.mcg` magic.
pub fn is_mcg(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(g: &Graph) -> Graph {
        let mut bytes = Vec::new();
        write_mcg(g, &mut bytes).unwrap();
        assert_eq!(bytes.len() as u64, encoded_len(g));
        assert!(is_mcg(&bytes));
        read_mcg(&bytes[..]).unwrap()
    }

    fn sample() -> Graph {
        Graph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
        .unwrap()
    }

    fn sample_bytes() -> Vec<u8> {
        let mut bytes = Vec::new();
        write_mcg(&sample(), &mut bytes).unwrap();
        bytes
    }

    #[test]
    fn roundtrip_small_graphs() {
        for g in [
            sample(),
            Graph::empty(0),
            Graph::empty(5),
            Graph::complete(6),
            Graph::from_edges(3, [(0, 2)]).unwrap(),
        ] {
            assert_eq!(roundtrip(&g), g);
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample_bytes();
        bytes[0] = b'X';
        assert!(matches!(read_mcg(&bytes[..]), Err(GraphError::BadMagic)));
        // A text edge list is not an mcg file either.
        assert!(matches!(
            read_mcg(&b"0 1\n1 2\n"[..]),
            Err(GraphError::BadMagic)
        ));
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut bytes = sample_bytes();
        bytes[8] = 99; // version field, little-endian low byte
        assert!(matches!(
            read_mcg(&bytes[..]),
            Err(GraphError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
        let mut bytes = sample_bytes();
        bytes[8] = 0;
        assert!(matches!(
            read_mcg(&bytes[..]),
            Err(GraphError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn nonzero_flags_rejected() {
        let mut bytes = sample_bytes();
        bytes[12] = 1; // flags field
        assert!(matches!(
            read_mcg(&bytes[..]),
            Err(GraphError::InvalidData { .. })
        ));
    }

    #[test]
    fn truncation_is_typed_everywhere() {
        let bytes = sample_bytes();
        for cut in [0, 4, 8, 20, 39, 40, 70, 104, bytes.len() - 1] {
            let err = read_mcg(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, GraphError::InvalidData { .. }),
                "cut at {cut}: {err}"
            );
            let msg = err.to_string();
            assert!(msg.contains("truncated"), "cut at {cut}: {msg}");
        }
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let bytes = sample_bytes();
        // Flip one byte in every payload position; each must be caught by a
        // section checksum (header/table corruption is caught structurally).
        let payload_start = (8 + HEADER_LEN + 2 * TABLE_ENTRY_LEN) as usize;
        for i in payload_start..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let err = read_mcg(&corrupt[..]).unwrap_err();
            assert!(
                matches!(err, GraphError::ChecksumMismatch { .. }),
                "byte {i}: {err}"
            );
        }
    }

    #[test]
    fn header_count_mismatch_rejected() {
        // Grow the header's n by one: OFFSETS length check fires.
        let mut bytes = sample_bytes();
        bytes[16] += 1;
        assert!(matches!(
            read_mcg(&bytes[..]),
            Err(GraphError::InvalidData { .. })
        ));
        // Grow m: ADJACENCY length check fires.
        let mut bytes = sample_bytes();
        bytes[24] += 1;
        assert!(matches!(
            read_mcg(&bytes[..]),
            Err(GraphError::InvalidData { .. })
        ));
    }

    #[test]
    fn unknown_sections_are_skipped() {
        // Hand-build a file with an unknown section between the two known
        // ones: reader must skip it and still load the graph.
        let g = sample();
        let mut canonical = Vec::new();
        write_mcg(&g, &mut canonical).unwrap();
        let offsets_len = (g.n() as u64 + 1) * 8;
        let adjacency_len = g.csr_adjacency().len() as u64 * 4;
        let extra = b"future-data";

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&(g.n() as u64).to_le_bytes());
        bytes.extend_from_slice(&(g.m() as u64).to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let base = 8 + HEADER_LEN + 3 * TABLE_ENTRY_LEN;
        let sections = [
            (SECTION_OFFSETS, base, offsets_len),
            (999u32, base + offsets_len, extra.len() as u64),
            (
                SECTION_ADJACENCY,
                base + offsets_len + extra.len() as u64,
                adjacency_len,
            ),
        ];
        // Checksums: reuse the canonical file's table entries for known
        // sections; hash the extra payload for the unknown one.
        let canon_table = &canonical[(8 + HEADER_LEN as usize)..];
        let offsets_sum = le_u64(&canon_table[24..32]);
        let adjacency_sum = le_u64(&canon_table[TABLE_ENTRY_LEN as usize + 24..]);
        let extra_sum = fnv1a64(FNV_OFFSET, extra);
        for (i, (id, off, len)) in sections.iter().enumerate() {
            bytes.extend_from_slice(&id.to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&off.to_le_bytes());
            bytes.extend_from_slice(&len.to_le_bytes());
            let sum = [offsets_sum, extra_sum, adjacency_sum][i];
            bytes.extend_from_slice(&sum.to_le_bytes());
        }
        let payload_start = (8 + HEADER_LEN + 2 * TABLE_ENTRY_LEN) as usize;
        let offsets_payload = &canonical[payload_start..payload_start + offsets_len as usize];
        let adjacency_payload = &canonical[payload_start + offsets_len as usize..];
        bytes.extend_from_slice(offsets_payload);
        bytes.extend_from_slice(extra);
        bytes.extend_from_slice(adjacency_payload);

        assert_eq!(read_mcg(&bytes[..]).unwrap(), g);
    }

    #[test]
    fn overlapping_sections_rejected() {
        let mut bytes = sample_bytes();
        // Point the ADJACENCY section's offset back before the OFFSETS
        // payload ends.
        let entry2 = (8 + HEADER_LEN + TABLE_ENTRY_LEN) as usize;
        let first_payload = 8 + HEADER_LEN + 2 * TABLE_ENTRY_LEN;
        bytes[entry2 + 8..entry2 + 16].copy_from_slice(&first_payload.to_le_bytes());
        assert!(matches!(
            read_mcg(&bytes[..]),
            Err(GraphError::InvalidData { .. })
        ));
    }

    #[test]
    fn missing_sections_rejected() {
        // Claim zero sections.
        let mut bytes = sample_bytes();
        bytes[32] = 0; // section_count low byte
        let err = read_mcg(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("missing OFFSETS"));
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        let mut bytes = sample_bytes();
        bytes.extend_from_slice(b"trailing junk");
        assert_eq!(read_mcg(&bytes[..]).unwrap(), sample());
    }

    #[test]
    fn file_helpers_roundtrip() {
        let dir = std::env::temp_dir().join("mcg-file-helpers-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.mcg");
        let g = sample();
        write_mcg_file(&g, &path).unwrap();
        assert_eq!(read_mcg_file(&path).unwrap(), g);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn encoded_len_of_empty_graph() {
        // magic 8 + header 32 + table 64 + one u64 offset entry.
        assert_eq!(encoded_len(&Graph::empty(0)), 8 + 32 + 64 + 8);
    }
}
