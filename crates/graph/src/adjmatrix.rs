//! A contiguous bit adjacency matrix for dense branch subgraphs.
//!
//! The enumeration recursion spends nearly all of its time intersecting a
//! candidate set against adjacency rows (`C ∩ N(v)`). Storing each row as its
//! own heap `Vec` (one `BitSet` per vertex) spreads the rows across the heap
//! and costs a pointer chase — and an allocation — per row. [`AdjMatrix`]
//! instead packs all rows into a **single `Vec<u64>` with a fixed row
//! stride**, so row access is one multiply, consecutive rows share cache
//! lines, and rebuilding the matrix for the next branch reuses the same
//! allocation ([`AdjMatrix::reset`]).
//!
//! Rows are exposed as `&[u64]` word slices; the fused kernels of
//! [`BitSet`](crate::BitSet) (`intersect_into`, `intersection_len_words`,
//! `and_not_iter`, …) consume them directly. This mirrors the bitstring
//! adjacency layout of bit-parallel MCE solvers (San Segundo et al.), which
//! is the dominant cost lever for dense branches.

/// A dense, contiguous `n × n` bit matrix with one row per vertex.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdjMatrix {
    words: Vec<u64>,
    n: usize,
    stride: usize,
}

const WORD_BITS: usize = 64;

impl AdjMatrix {
    /// Creates an all-zero matrix over `n` vertices.
    pub fn new(n: usize) -> Self {
        let stride = n.div_ceil(WORD_BITS);
        AdjMatrix {
            words: vec![0; n * stride],
            n,
            stride,
        }
    }

    /// Empties the matrix and resizes it to `n` vertices, reusing the backing
    /// allocation whenever it is large enough.
    pub fn reset(&mut self, n: usize) {
        let stride = n.div_ceil(WORD_BITS);
        self.words.clear();
        self.words.resize(n * stride, 0);
        self.n = n;
        self.stride = stride;
    }

    /// Number of vertices (rows).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Row `i` as a word slice of length [`AdjMatrix::stride`].
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        debug_assert!(i < self.n, "row {i} out of {}", self.n);
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Sets the directed bit `(i, j)`.
    #[inline]
    pub fn insert(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.n && j < self.n, "({i}, {j}) out of {}", self.n);
        self.words[i * self.stride + j / WORD_BITS] |= 1 << (j % WORD_BITS);
    }

    /// Sets both `(i, j)` and `(j, i)` — an undirected edge.
    #[inline]
    pub fn insert_sym(&mut self, i: usize, j: usize) {
        self.insert(i, j);
        self.insert(j, i);
    }

    /// Whether bit `(i, j)` is set.
    #[inline]
    pub fn contains(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n, "({i}, {j}) out of {}", self.n);
        self.words[i * self.stride + j / WORD_BITS] & (1 << (j % WORD_BITS)) != 0
    }

    /// Number of set bits in row `i` (the degree of vertex `i`).
    pub fn row_len(&self, i: usize) -> usize {
        (crate::kernels::active().popcount)(self.row(i))
    }

    /// Iterates over the set bits of row `i` in increasing order.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(i).iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitSet;

    #[test]
    fn new_matrix_is_empty() {
        let m = AdjMatrix::new(100);
        assert_eq!(m.n(), 100);
        assert_eq!(m.stride(), 2);
        assert!((0..100).all(|i| m.row_len(i) == 0));
    }

    #[test]
    fn insert_and_contains() {
        let mut m = AdjMatrix::new(70);
        m.insert_sym(0, 65);
        m.insert(3, 4);
        assert!(m.contains(0, 65) && m.contains(65, 0));
        assert!(m.contains(3, 4));
        assert!(!m.contains(4, 3), "insert is directed");
        assert_eq!(m.row_len(0), 1);
        assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![65]);
    }

    #[test]
    fn rows_are_word_slices_compatible_with_bitset_kernels() {
        let mut m = AdjMatrix::new(70);
        m.insert_sym(1, 3);
        m.insert_sym(1, 69);
        let c: BitSet = [0usize, 3, 5, 69].into_iter().collect();
        assert_eq!(c.intersection_len_words(m.row(1)), 2);
        let mut out = BitSet::default();
        c.intersect_into(m.row(1), &mut out);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![3, 69]);
    }

    #[test]
    fn reset_reuses_and_clears() {
        let mut m = AdjMatrix::new(10);
        m.insert_sym(0, 9);
        m.reset(5);
        assert_eq!(m.n(), 5);
        assert!((0..5).all(|i| m.row_len(i) == 0));
        m.insert_sym(0, 4);
        assert!(m.contains(4, 0));
        m.reset(130);
        assert_eq!(m.stride(), 3);
        assert!((0..130).all(|i| m.row_len(i) == 0));
    }

    #[test]
    fn zero_vertices_matrix() {
        let m = AdjMatrix::new(0);
        assert_eq!(m.n(), 0);
        assert_eq!(m.stride(), 0);
    }
}
