//! Criterion bench for Table V: the early-termination parameter t ∈ {0,1,2,3}
//! (t = 0 is HBBMC+ without the technique, t = 3 is the default HBBMC++).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbbmc::SolverConfig;
use mce_bench::datasets::bench_datasets;
use mce_bench::runner::measure;

fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_early_termination");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for dataset in bench_datasets() {
        let graph = dataset.build_scaled(0.35);
        for t in 0..=3usize {
            group.bench_with_input(
                BenchmarkId::new(format!("t{t}"), dataset.short),
                &graph,
                |b, g| b.iter(|| measure(g, &SolverConfig::hbbmc_pp_et(t)).cliques),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
