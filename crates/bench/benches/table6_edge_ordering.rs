//! Criterion bench for Table VI: the truss-based edge ordering against the
//! degeneracy vertex ordering (VBBMC-dgn) and two alternative edge orderings
//! (HBBMC-dgn, HBBMC-mdg).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mce_bench::algorithms::ordering_algorithms;
use mce_bench::datasets::bench_datasets;
use mce_bench::runner::measure;

fn bench_table6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_edge_ordering");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for dataset in bench_datasets() {
        let graph = dataset.build_scaled(0.35);
        for algo in ordering_algorithms() {
            group.bench_with_input(
                BenchmarkId::new(algo.name, dataset.short),
                &graph,
                |b, g| b.iter(|| measure(g, &algo.config).cliques),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
