//! CSR memory-wall benchmark with a JSON trajectory emitter.
//!
//! ```text
//! cargo bench --bench bench_csr -- [--quick] [--threads N] [--repeats N]
//!                                  [--variant NAME] [--json PATH]
//! ```
//!
//! Runs the `er-scale` instance matrix of [`mce_bench::csr`] (CSR vs analytic
//! dense footprint, text vs `.mcg` load time, enumeration through the sparse
//! global layer, peak RSS) and, when `--json` is given, appends one record
//! per cell to the trajectory file, re-validating it afterwards. Unknown
//! flags injected by the cargo bench harness (`--bench`, ...) are ignored.

use std::path::PathBuf;

use mce_bench::csr::{append_records, run_csr_bench, CsrBenchOptions};

fn main() {
    let mut options = CsrBenchOptions::default();
    let mut json_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--threads" => {
                options.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a positive integer");
            }
            "--repeats" => {
                options.repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats takes a positive integer");
            }
            "--variant" => {
                options.variant = args.next().expect("--variant takes a label");
            }
            "--json" => {
                json_path = Some(PathBuf::from(args.next().expect("--json takes a path")));
            }
            // `cargo bench` passes `--bench`; ignore it and anything unknown.
            other => {
                if !other.starts_with("--bench") {
                    eprintln!("bench_csr: ignoring unknown argument '{other}'");
                }
            }
        }
    }

    println!(
        "# bench_csr variant={} threads={} repeats={} ({} matrix)",
        options.variant,
        options.threads,
        options.repeats,
        if options.quick { "quick" } else { "full" }
    );
    let records = run_csr_bench(&options);

    if let Some(path) = json_path {
        match append_records(&path, &options.variant, &records) {
            Ok(total) => println!(
                "appended {} records to {} ({} csr records total, validated)",
                records.len(),
                path.display(),
                total
            ),
            Err(e) => {
                eprintln!("bench_csr: JSON emission failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
