//! Microbenchmarks of the graph substrate used by every framework: degeneracy
//! ordering, truss-based edge ordering, triangle counting and the graph
//! reduction. These are the `O(δm)` preprocessing terms of Theorems 1 and 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mce_gen::{barabasi_albert, erdos_renyi};
use mce_graph::{degeneracy_ordering, triangle_count, truss_ordering, Graph};

fn inputs() -> Vec<(&'static str, Graph)> {
    vec![
        ("er_n4000_rho10", erdos_renyi(4_000, 40_000, 3)),
        ("ba_n4000_k10", barabasi_albert(4_000, 10, 3)),
    ]
}

fn bench_orderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, g) in inputs() {
        group.bench_with_input(BenchmarkId::new("degeneracy", name), &g, |b, g| {
            b.iter(|| degeneracy_ordering(g).degeneracy)
        });
        group.bench_with_input(BenchmarkId::new("truss_ordering", name), &g, |b, g| {
            b.iter(|| truss_ordering(g).tau)
        });
        group.bench_with_input(BenchmarkId::new("triangle_count", name), &g, |b, g| {
            b.iter(|| triangle_count(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
