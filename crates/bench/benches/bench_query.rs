//! Anchored-query benchmark with a JSON trajectory emitter.
//!
//! ```text
//! cargo bench --bench bench_query -- [--quick] [--repeats N]
//!                                    [--variant NAME] [--json PATH]
//! ```
//!
//! Runs the anchored-vs-full matrix of [`mce_bench::query`] and, when
//! `--json` is given, appends one record per anchored cell to the trajectory
//! file (typically the workspace-level `BENCH_solver.json`), re-validating
//! the file — including the query-specific counter fields — afterwards.
//! Unknown flags injected by the cargo bench harness (`--bench`, ...) are
//! ignored.

use std::path::PathBuf;

use mce_bench::query::{append_records, run_query_bench, QueryBenchOptions};

fn main() {
    let mut options = QueryBenchOptions::default();
    let mut json_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--repeats" => {
                options.repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats takes a positive integer");
            }
            "--variant" => {
                options.variant = args.next().expect("--variant takes a label");
            }
            "--json" => {
                json_path = Some(PathBuf::from(args.next().expect("--json takes a path")));
            }
            // `cargo bench` passes `--bench`; ignore it and anything unknown.
            other => {
                if !other.starts_with("--bench") {
                    eprintln!("bench_query: ignoring unknown argument '{other}'");
                }
            }
        }
    }

    println!(
        "# bench_query variant={} repeats={} ({} matrix)",
        options.variant,
        options.repeats,
        if options.quick { "quick" } else { "full" }
    );
    let records = run_query_bench(&options);

    if let Some(path) = json_path {
        match append_records(&path, &options.variant, &records) {
            Ok(total) => println!(
                "appended {} records to {} ({} query records total, validated)",
                records.len(),
                path.display(),
                total
            ),
            Err(e) => {
                eprintln!("bench_query: JSON emission failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
