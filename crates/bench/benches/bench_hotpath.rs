//! End-to-end solver hot-path benchmark with a JSON trajectory emitter.
//!
//! ```text
//! cargo bench --bench bench_hotpath -- [--quick] [--threads N] [--repeats N]
//!                                      [--variant NAME] [--json PATH]
//! ```
//!
//! Runs the graphs × presets matrix of [`mce_bench::hotpath`] and, when
//! `--json` is given, appends one record per cell to the trajectory file
//! (typically the workspace-level `BENCH_solver.json`), re-validating the
//! file afterwards. Unknown flags injected by the cargo bench harness
//! (`--bench`, ...) are ignored.

use std::path::PathBuf;

use mce_bench::hotpath::{append_records, run_hotpath, HotpathOptions};

fn main() {
    let mut options = HotpathOptions::default();
    let mut json_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--threads" => {
                options.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads takes a positive integer");
            }
            "--repeats" => {
                options.repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats takes a positive integer");
            }
            "--variant" => {
                options.variant = args.next().expect("--variant takes a label");
            }
            "--json" => {
                json_path = Some(PathBuf::from(args.next().expect("--json takes a path")));
            }
            // `cargo bench` passes `--bench`; ignore it and anything unknown.
            other => {
                if !other.starts_with("--bench") {
                    eprintln!("bench_hotpath: ignoring unknown argument '{other}'");
                }
            }
        }
    }

    println!(
        "# bench_hotpath variant={} threads={} repeats={} ({} matrix)",
        options.variant,
        options.threads,
        options.repeats,
        if options.quick { "quick" } else { "full" }
    );
    let records = run_hotpath(&options);

    if let Some(path) = json_path {
        match append_records(&path, &options.variant, &records) {
            Ok(total) => println!(
                "appended {} records to {} ({} total, validated)",
                records.len(),
                path.display(),
                total
            ),
            Err(e) => {
                eprintln!("bench_hotpath: JSON emission failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
