//! Criterion bench for Table IV: the depth d at which the hybrid framework
//! switches from edge-oriented to vertex-oriented branching (d = 1 is HBBMC++).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbbmc::SolverConfig;
use mce_bench::datasets::bench_datasets;
use mce_bench::runner::measure;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_hybrid_depth");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for dataset in bench_datasets() {
        let graph = dataset.build_scaled(0.3);
        for depth in [1usize, 2, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("d{depth}"), dataset.short),
                &graph,
                |b, g| b.iter(|| measure(g, &SolverConfig::hbbmc_pp_depth(depth)).cliques),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
