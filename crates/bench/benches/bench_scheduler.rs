//! Skewed-graph scheduler benchmark with a JSON trajectory emitter.
//!
//! ```text
//! cargo bench --bench bench_scheduler -- [--quick] [--repeats N]
//!                                        [--variant NAME] [--json PATH]
//! ```
//!
//! Runs the skewed graphs × {dynamic, splitting} × thread-count matrix of
//! [`mce_bench::scheduler`] and, when `--json` is given, appends one record
//! per cell to the trajectory file (typically the workspace-level
//! `BENCH_solver.json`), re-validating the file — including the new
//! scheduler fields — afterwards. Unknown flags injected by the cargo bench
//! harness (`--bench`, ...) are ignored.

use std::path::PathBuf;

use mce_bench::scheduler::{append_records, run_scheduler_bench, SchedulerBenchOptions};

fn main() {
    let mut options = SchedulerBenchOptions::default();
    let mut json_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--repeats" => {
                options.repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats takes a positive integer");
            }
            "--variant" => {
                options.variant = args.next().expect("--variant takes a label");
            }
            "--json" => {
                json_path = Some(PathBuf::from(args.next().expect("--json takes a path")));
            }
            // `cargo bench` passes `--bench`; ignore it and anything unknown.
            other => {
                if !other.starts_with("--bench") {
                    eprintln!("bench_scheduler: ignoring unknown argument '{other}'");
                }
            }
        }
    }

    println!(
        "# bench_scheduler variant={} repeats={} ({} matrix)",
        options.variant,
        options.repeats,
        if options.quick { "quick" } else { "full" }
    );
    let records = run_scheduler_bench(&options);

    if let Some(path) = json_path {
        match append_records(&path, &options.variant, &records) {
            Ok(total) => println!(
                "appended {} records to {} ({} scheduler records total, validated)",
                records.len(),
                path.display(),
                total
            ),
            Err(e) => {
                eprintln!("bench_scheduler: JSON emission failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
