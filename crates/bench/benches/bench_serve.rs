//! Serve-layer benchmark with a JSON trajectory emitter.
//!
//! ```text
//! cargo bench --bench bench_serve -- [--quick] [--repeats N] [--chaos]
//!                                    [--variant NAME] [--json PATH]
//! ```
//!
//! Runs the concurrent-client serve matrix of [`mce_bench::serve`] and, when
//! `--json` is given, appends one record per cell to the trajectory file
//! (typically the workspace-level `BENCH_solver.json`), re-validating the
//! file — including the serve-specific session counters — afterwards.
//!
//! With `--chaos` the same instances run with faults armed (an injected
//! worker panic every third query, an idle connection left for the reaper,
//! degraded admission past the high-water mark) and each cell is recorded
//! under the `serve-chaos` schema: sessions admitted / degraded / reaped /
//! panics contained, and queries-per-second under injected faults.
//!
//! Unknown flags injected by the cargo bench harness (`--bench`, ...) are
//! ignored.

use std::path::PathBuf;

use mce_bench::serve::{
    append_chaos_records, append_records, run_chaos_bench, run_serve_bench, ServeBenchOptions,
};

fn main() {
    let mut options = ServeBenchOptions::default();
    let mut json_path: Option<PathBuf> = None;
    let mut chaos = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--chaos" => chaos = true,
            "--repeats" => {
                options.repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats takes a positive integer");
            }
            "--variant" => {
                options.variant = args.next().expect("--variant takes a label");
            }
            "--json" => {
                json_path = Some(PathBuf::from(args.next().expect("--json takes a path")));
            }
            // `cargo bench` passes `--bench`; ignore it and anything unknown.
            other => {
                if !other.starts_with("--bench") {
                    eprintln!("bench_serve: ignoring unknown argument '{other}'");
                }
            }
        }
    }

    println!(
        "# bench_serve variant={} repeats={} ({} matrix{})",
        options.variant,
        options.repeats,
        if options.quick { "quick" } else { "full" },
        if chaos { ", chaos" } else { "" }
    );

    if chaos {
        let records = run_chaos_bench(&options);
        if let Some(path) = json_path {
            match append_chaos_records(&path, &options.variant, &records) {
                Ok(total) => println!(
                    "appended {} records to {} ({} chaos records total, validated)",
                    records.len(),
                    path.display(),
                    total
                ),
                Err(e) => {
                    eprintln!("bench_serve: JSON emission failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    let records = run_serve_bench(&options);
    if let Some(path) = json_path {
        match append_records(&path, &options.variant, &records) {
            Ok(total) => println!(
                "appended {} records to {} ({} serve records total, validated)",
                records.len(),
                path.display(),
                total
            ),
            Err(e) => {
                eprintln!("bench_serve: JSON emission failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
