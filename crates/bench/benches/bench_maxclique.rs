//! Maximum-clique benchmark with a JSON trajectory emitter.
//!
//! ```text
//! cargo bench --bench bench_maxclique -- [--quick] [--repeats N]
//!                                        [--variant NAME] [--json PATH]
//! ```
//!
//! Runs the B&B-vs-enumeration matrix of [`mce_bench::maxclique`] and, when
//! `--json` is given, appends one record per cell to the trajectory file
//! (typically the workspace-level `BENCH_solver.json`), re-validating the
//! file — including the maxclique-specific counter fields — afterwards.
//! Unknown flags injected by the cargo bench harness (`--bench`, ...) are
//! ignored.

use std::path::PathBuf;

use mce_bench::maxclique::{append_records, run_maxclique_bench, MaxCliqueBenchOptions};

fn main() {
    let mut options = MaxCliqueBenchOptions::default();
    let mut json_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--repeats" => {
                options.repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats takes a positive integer");
            }
            "--variant" => {
                options.variant = args.next().expect("--variant takes a label");
            }
            "--json" => {
                json_path = Some(PathBuf::from(args.next().expect("--json takes a path")));
            }
            // `cargo bench` passes `--bench`; ignore it and anything unknown.
            other => {
                if !other.starts_with("--bench") {
                    eprintln!("bench_maxclique: ignoring unknown argument '{other}'");
                }
            }
        }
    }

    println!(
        "# bench_maxclique variant={} repeats={} ({} matrix)",
        options.variant,
        options.repeats,
        if options.quick { "quick" } else { "full" }
    );
    let records = run_maxclique_bench(&options);

    if let Some(path) = json_path {
        match append_records(&path, &options.variant, &records) {
            Ok(total) => println!(
                "appended {} records to {} ({} maxclique records total, validated)",
                records.len(),
                path.display(),
                total
            ),
            Err(e) => {
                eprintln!("bench_maxclique: JSON emission failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
