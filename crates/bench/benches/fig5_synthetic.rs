//! Criterion bench for Figure 5: synthetic Erdős–Rényi / Barabási–Albert
//! graphs, sweeping the number of vertices (panels a/b) and the edge density
//! (panels c/d), comparing HBBMC++ with the strongest baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hbbmc::SolverConfig;
use mce_bench::runner::measure;
use mce_gen::{barabasi_albert, erdos_renyi};

fn algorithms() -> Vec<(&'static str, SolverConfig)> {
    vec![
        ("HBBMC++", SolverConfig::hbbmc_pp()),
        ("RDegen", SolverConfig::r_degen()),
        ("RRcd", SolverConfig::r_rcd()),
    ]
}

fn bench_fig5_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_scalability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[1_000usize, 2_000, 4_000] {
        let er = erdos_renyi(n, n * 20, 42);
        let ba = barabasi_albert(n, 20, 42);
        for (name, config) in algorithms() {
            group.bench_with_input(BenchmarkId::new(format!("ER/{name}"), n), &er, |b, g| {
                b.iter(|| measure(g, &config).cliques)
            });
            group.bench_with_input(BenchmarkId::new(format!("BA/{name}"), n), &ba, |b, g| {
                b.iter(|| measure(g, &config).cliques)
            });
        }
    }
    group.finish();
}

fn bench_fig5_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_density");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 2_000usize;
    for &rho in &[5usize, 10, 20, 30] {
        let er = erdos_renyi(n, n * rho, 7);
        let ba = barabasi_albert(n, rho, 7);
        for (name, config) in algorithms() {
            group.bench_with_input(BenchmarkId::new(format!("ER/{name}"), rho), &er, |b, g| {
                b.iter(|| measure(g, &config).cliques)
            });
            group.bench_with_input(BenchmarkId::new(format!("BA/{name}"), rho), &ba, |b, g| {
                b.iter(|| measure(g, &config).cliques)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5_scalability, bench_fig5_density);
criterion_main!(benches);
