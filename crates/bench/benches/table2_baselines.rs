//! Criterion bench for Table II: HBBMC++ against the reduction-enhanced VBBMC
//! baselines (RRef, RDegen, RRcd, RFac) on the surrogate datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mce_bench::algorithms::baseline_algorithms;
use mce_bench::datasets::bench_datasets;
use mce_bench::runner::measure;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_baselines");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for dataset in bench_datasets() {
        let graph = dataset.build_scaled(0.35);
        for algo in baseline_algorithms() {
            group.bench_with_input(
                BenchmarkId::new(algo.name, dataset.short),
                &graph,
                |b, g| b.iter(|| measure(g, &algo.config).cliques),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
