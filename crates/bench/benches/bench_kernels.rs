//! Kernel-backend benchmark with a JSON trajectory emitter.
//!
//! ```text
//! cargo bench --bench bench_kernels -- [--quick] [--repeats N]
//!                                      [--variant NAME] [--json PATH]
//! ```
//!
//! Runs the kernel matrix of [`mce_bench::kernels`]: raw words/sec cells for
//! every fused word op on every backend the host supports (in-process, via
//! the per-backend function tables), then the end-to-end hotpath, maxclique
//! and top-k cells once per backend. Because the solver's backend is locked
//! process-wide on first use, the end-to-end cells run in child re-execs of
//! this binary (`--kernels-child`) with `MCE_KERNEL` pinned; the child hands
//! its records back on a marker line. With `--json`, every record is
//! appended to the trajectory file (typically the workspace-level
//! `BENCH_solver.json`) and the file is re-validated. Unknown flags injected
//! by the cargo bench harness (`--bench`, ...) are ignored.

use std::path::PathBuf;

use mce_bench::kernels::{
    append_records, child_marker_line, run_end_to_end_cells, run_kernel_bench, KernelBenchOptions,
};

fn main() {
    let mut options = KernelBenchOptions::default();
    let mut json_path: Option<PathBuf> = None;
    let mut child = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--kernels-child" => child = true,
            "--repeats" => {
                options.repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--repeats takes a positive integer");
            }
            "--variant" => {
                options.variant = args.next().expect("--variant takes a label");
            }
            "--json" => {
                json_path = Some(PathBuf::from(args.next().expect("--json takes a path")));
            }
            // `cargo bench` passes `--bench`; ignore it and anything unknown.
            other => {
                if !other.starts_with("--bench") {
                    eprintln!("bench_kernels: ignoring unknown argument '{other}'");
                }
            }
        }
    }

    if child {
        // Child mode: the parent pinned MCE_KERNEL; measure the end-to-end
        // cells under that backend and hand the records back.
        let expected = std::env::var(mce_graph::kernels::ENV_VAR).ok();
        match run_end_to_end_cells(&options, expected.as_deref()) {
            Ok(records) => {
                for r in &records {
                    println!(
                        "  {:<10} {:<10} {:<14} {:>9.4}s cliques={} evals={}",
                        r.backend, r.kind, r.graph, r.seconds, r.cliques, r.branch_evals
                    );
                }
                println!("{}", child_marker_line(&records, &options.variant));
            }
            Err(e) => {
                eprintln!("bench_kernels (child): {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!(
        "# bench_kernels variant={} repeats={} ({} matrix)",
        options.variant,
        options.repeats,
        if options.quick { "quick" } else { "full" }
    );
    let self_exe = std::env::current_exe().expect("resolving the benchmark executable");
    let records = match run_kernel_bench(&self_exe, &options) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("bench_kernels: {e}");
            std::process::exit(1);
        }
    };

    if let Some(path) = json_path {
        match append_records(&path, &options.variant, &records) {
            Ok(total) => println!(
                "appended {} records to {} ({} records total, validated)",
                records.len(),
                path.display(),
                total
            ),
            Err(e) => {
                eprintln!("bench_kernels: JSON emission failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
