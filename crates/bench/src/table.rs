//! Minimal fixed-width table formatter for the `experiments` binary output.

/// A simple text table with a header row and aligned columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (must have the same arity as the header).
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Graph", "Time (s)"]);
        t.add_row(vec!["NA".into(), "0.33".into()]);
        t.add_row(vec!["ORKUT".into(), "884.20".into()]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("Graph"));
        assert!(text.contains("ORKUT"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_row_arity_panics() {
        let mut t = Table::new("Demo", &["A", "B"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("X", &["c"]);
        t.add_row(vec!["1".into()]);
        assert_eq!(t.to_string(), t.render());
    }
}
