//! The maximum-clique benchmark behind `cargo bench --bench bench_maxclique`.
//!
//! The dedicated branch-and-bound engine ([`hbbmc::maximum_clique_bb`]) and
//! the enumeration-riding baseline ([`hbbmc::maximum_clique`], a
//! [`MaximumCliqueReporter`] over the full HBBMC++ enumeration) answer the
//! same question; this matrix quantifies what the bounds buy, *counter-first*
//! (the recording host exposes a single CPU): the headline columns are
//! `recursive_calls` of the B&B search vs. the full enumeration, the derived
//! `calls_ratio`, and the pruning counters (`branches_pruned_by_color`,
//! `branches_pruned_by_core`, `lb_updates`) that explain *why* the search
//! tree collapsed. Wall-clock seconds ride along for completeness.
//!
//! Each cell asserts the two engines return the byte-identical canonical
//! winner before it is recorded — the benchmark doubles as a cross-engine
//! gate. Graphs small enough for an adjacency matrix get a second `dense`
//! cell so both [`GraphTopology`] impls are exercised; the er-scale instance
//! runs on CSR only.
//!
//! One flat JSON object per cell is appended to the `BENCH_solver.json`
//! trajectory (schema [`SCHEMA`]).
//!
//! [`GraphTopology`]: mce_graph::GraphTopology
//! [`MaximumCliqueReporter`]: hbbmc::MaximumCliqueReporter

use std::path::Path;

use hbbmc::{
    enumerate, maximum_clique_bb_with_state, MaxCliqueState, MaximumCliqueReporter, Outcome,
    SolverConfig, TerminatingBound,
};
use mce_gen::{barabasi_albert, erdos_renyi, planted_communities, PlantedConfig};
use mce_graph::{AdjMatrix, Graph, GraphTopology};

use crate::json::{append_runs, parse, JsonValue};

/// Schema tag stamped on every maximum-clique benchmark record.
pub const SCHEMA: &str = "hbbmc-bench-maxclique/v1";

/// Graphs above this vertex count skip the dense (adjacency-matrix) cell.
const DENSE_CELL_MAX_N: usize = 1_200;

/// Options of one maximum-clique benchmark invocation.
#[derive(Clone, Debug)]
pub struct MaxCliqueBenchOptions {
    /// Label identifying the code state being measured.
    pub variant: String,
    /// Use the tiny graph matrix (CI smoke runs).
    pub quick: bool,
    /// Timed repetitions per cell; the best (minimum) time is recorded.
    pub repeats: usize,
}

impl Default for MaxCliqueBenchOptions {
    fn default() -> Self {
        MaxCliqueBenchOptions {
            variant: "unnamed".into(),
            quick: false,
            repeats: 2,
        }
    }
}

/// One measured branch-and-bound cell (with its enumeration baseline).
#[derive(Clone, Debug)]
pub struct MaxCliqueRecord {
    /// Graph name.
    pub graph: String,
    /// Vertex count of the instance.
    pub n: usize,
    /// Edge count of the instance.
    pub m: usize,
    /// Topology the B&B ran on: `"csr"` or `"dense"`.
    pub topology: String,
    /// Best wall-clock seconds of the B&B search.
    pub seconds: f64,
    /// Size of the (canonical) maximum clique.
    pub clique_size: usize,
    /// Recursive branch evaluations of the B&B search.
    pub recursive_calls: u64,
    /// Branches closed by the greedy-coloring upper bound.
    pub branches_pruned_by_color: u64,
    /// Roots/candidates discarded by the core-number bound.
    pub branches_pruned_by_core: u64,
    /// Times the incumbent (lower bound) improved.
    pub lb_updates: u64,
    /// Which bound terminated the search (display form).
    pub terminating_bound: String,
    /// Best wall-clock seconds of the enumeration-riding baseline.
    pub enum_seconds: f64,
    /// Recursive branch evaluations of the full enumeration baseline.
    pub enum_recursive_calls: u64,
}

impl MaxCliqueRecord {
    /// How many times fewer branch evaluations the B&B needed.
    pub fn calls_ratio(&self) -> f64 {
        self.enum_recursive_calls as f64 / self.recursive_calls.max(1) as f64
    }

    /// The flat JSON object appended to the trajectory file.
    pub fn to_json(&self, variant: &str) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", JsonValue::Str(SCHEMA.into())),
            ("variant", JsonValue::Str(variant.into())),
            ("graph", JsonValue::Str(self.graph.clone())),
            ("n", JsonValue::Num(self.n as f64)),
            ("m", JsonValue::Num(self.m as f64)),
            ("topology", JsonValue::Str(self.topology.clone())),
            ("seconds", JsonValue::Num(self.seconds)),
            ("clique_size", JsonValue::Num(self.clique_size as f64)),
            (
                "recursive_calls",
                JsonValue::Num(self.recursive_calls as f64),
            ),
            (
                "branches_pruned_by_color",
                JsonValue::Num(self.branches_pruned_by_color as f64),
            ),
            (
                "branches_pruned_by_core",
                JsonValue::Num(self.branches_pruned_by_core as f64),
            ),
            ("lb_updates", JsonValue::Num(self.lb_updates as f64)),
            (
                "terminating_bound",
                JsonValue::Str(self.terminating_bound.clone()),
            ),
            ("enum_seconds", JsonValue::Num(self.enum_seconds)),
            (
                "enum_recursive_calls",
                JsonValue::Num(self.enum_recursive_calls as f64),
            ),
            ("calls_ratio", JsonValue::Num(self.calls_ratio())),
        ])
    }
}

/// The benchmark instances: `(name, graph)`. Community graphs carry a large
/// planted clique (the lower bound finds it immediately, the bounds then
/// close almost everything); the preferential-attachment and sparse-ER
/// instances have no planted structure, so the coloring bound does the work.
/// The er-scale instance stresses the CSR path at a size where the full
/// enumeration is still feasible but visibly more expensive.
pub fn maxclique_graphs(quick: bool) -> Vec<(&'static str, Graph)> {
    let planted = |n: usize, communities: usize, seed: u64| {
        planted_communities(&PlantedConfig {
            n,
            communities,
            min_size: 4,
            max_size: 9,
            intra_probability: 1.0,
            background_edges: 2 * n,
            seed,
        })
    };
    if quick {
        vec![
            ("planted_n60", planted(60, 5, 5)),
            ("er_n200_m2400", erdos_renyi(200, 2_400, 7)),
        ]
    } else {
        vec![
            ("planted_n1000", planted(1_000, 40, 5)),
            ("ba_n2000_k10", barabasi_albert(2_000, 10, 7)),
            ("er_n800_m24000", erdos_renyi(800, 24_000, 11)),
            ("er_scale_n20000_m160000", erdos_renyi(20_000, 160_000, 13)),
        ]
    }
}

/// Runs the B&B on one topology, `repeats` times, reusing one scratch state.
/// Returns the winner and the stats of the best (fastest) run.
fn run_bb_cell<G: GraphTopology>(
    g: &G,
    repeats: usize,
) -> (Vec<mce_graph::VertexId>, hbbmc::EnumerationStats) {
    let mut state = MaxCliqueState::new();
    let mut best_time = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let (clique, stats) = maximum_clique_bb_with_state(g, &mut state);
        let secs = stats.elapsed.as_secs_f64();
        if secs < best_time {
            best_time = secs;
            out = Some((clique, stats));
        }
    }
    out.expect("at least one repeat")
}

/// Runs the enumeration-riding baseline (`MaximumCliqueReporter` over the
/// full HBBMC++ enumeration). Returns the winner, best seconds, and calls.
fn run_enum_cell(g: &Graph, repeats: usize) -> (Vec<mce_graph::VertexId>, f64, u64) {
    let config = SolverConfig::hbbmc_pp();
    let mut best_time = f64::INFINITY;
    let mut winner = Vec::new();
    let mut calls = 0u64;
    for _ in 0..repeats.max(1) {
        let mut reporter = MaximumCliqueReporter::new();
        let stats = enumerate(g, &config, &mut reporter);
        calls = stats.recursive_calls;
        best_time = best_time.min(stats.elapsed.as_secs_f64());
        winner = reporter.best;
    }
    (winner, best_time, calls)
}

/// Dense (adjacency-matrix) copy of a CSR graph.
fn dense_copy(g: &Graph) -> AdjMatrix {
    let mut dense = AdjMatrix::new(g.n());
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            dense.insert_sym(v as usize, u as usize);
        }
    }
    dense
}

fn record_for(
    name: &str,
    g: &Graph,
    topology: &str,
    clique: &[mce_graph::VertexId],
    stats: &hbbmc::EnumerationStats,
    enum_seconds: f64,
    enum_calls: u64,
) -> MaxCliqueRecord {
    MaxCliqueRecord {
        graph: name.to_string(),
        n: g.n(),
        m: g.m(),
        topology: topology.to_string(),
        seconds: stats.elapsed.as_secs_f64(),
        clique_size: clique.len(),
        recursive_calls: stats.recursive_calls,
        branches_pruned_by_color: stats.branches_pruned_by_color,
        branches_pruned_by_core: stats.branches_pruned_by_core,
        lb_updates: stats.lb_updates,
        terminating_bound: TerminatingBound::from_run(stats, Outcome::Complete).to_string(),
        enum_seconds,
        enum_recursive_calls: enum_calls,
    }
}

fn print_record(r: &MaxCliqueRecord) {
    println!(
        "{:<24} {:>5} ω={:<3} {:>10.4}s  calls {:>8} vs {:>9} enum ({:>6.1}x)  \
         color-pruned {:>7}  core-pruned {:>7}  lb updates {}  [{}]",
        r.graph,
        r.topology,
        r.clique_size,
        r.seconds,
        r.recursive_calls,
        r.enum_recursive_calls,
        r.calls_ratio(),
        r.branches_pruned_by_color,
        r.branches_pruned_by_core,
        r.lb_updates,
        r.terminating_bound,
    );
}

/// Runs the B&B-vs-enumeration matrix, printing one line per cell.
pub fn run_maxclique_bench(options: &MaxCliqueBenchOptions) -> Vec<MaxCliqueRecord> {
    let mut records = Vec::new();
    for (name, g) in maxclique_graphs(options.quick) {
        let (expected, enum_seconds, enum_calls) = run_enum_cell(&g, options.repeats);
        let (clique, stats) = run_bb_cell(&g, options.repeats);
        assert_eq!(
            clique, expected,
            "{name}: B&B winner differs from the enumeration baseline"
        );
        let record = record_for(name, &g, "csr", &clique, &stats, enum_seconds, enum_calls);
        print_record(&record);
        records.push(record);
        if g.n() <= DENSE_CELL_MAX_N {
            let (dense_clique, dense_stats) = run_bb_cell(&dense_copy(&g), options.repeats);
            assert_eq!(
                dense_clique, expected,
                "{name}: dense B&B winner differs from the enumeration baseline"
            );
            let record = record_for(
                name,
                &g,
                "dense",
                &dense_clique,
                &dense_stats,
                enum_seconds,
                enum_calls,
            );
            print_record(&record);
            records.push(record);
        }
    }
    records
}

/// Appends every record to the trajectory file and re-validates it,
/// including the maxclique-specific fields (the check the CI smoke job
/// relies on).
pub fn append_records(
    path: &Path,
    variant: &str,
    records: &[MaxCliqueRecord],
) -> Result<usize, String> {
    append_runs(path, records.iter().map(|r| r.to_json(variant)).collect())?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("re-reading {}: {e}", path.display()))?;
    let parsed = parse(&text)?;
    let runs = parsed
        .as_array()
        .ok_or_else(|| format!("{} is not a JSON array", path.display()))?;
    let mut maxclique_runs = 0usize;
    for run in runs {
        if run.get("schema").and_then(JsonValue::as_str) == Some(SCHEMA) {
            maxclique_runs += 1;
            for key in [
                "variant",
                "graph",
                "topology",
                "seconds",
                "clique_size",
                "recursive_calls",
                "branches_pruned_by_color",
                "branches_pruned_by_core",
                "lb_updates",
                "terminating_bound",
                "enum_recursive_calls",
                "calls_ratio",
            ] {
                if run.get(key).is_none() {
                    return Err(format!("maxclique record missing key '{key}'"));
                }
            }
        }
    }
    Ok(maxclique_runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_measures_and_serialises() {
        let options = MaxCliqueBenchOptions {
            variant: "test".into(),
            quick: true,
            repeats: 1,
        };
        let records = run_maxclique_bench(&options);
        // Every quick graph is small enough for a dense cell too.
        assert_eq!(records.len(), maxclique_graphs(true).len() * 2);
        for r in &records {
            assert!(r.clique_size >= 2, "{}: degenerate winner", r.graph);
            assert!(
                r.recursive_calls <= r.enum_recursive_calls,
                "{} ({}): the bounds must not add work",
                r.graph,
                r.topology
            );
            let json = r.to_json("test");
            assert_eq!(json.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
            assert!(json.get("calls_ratio").is_some());
            assert!(json.get("terminating_bound").is_some());
        }
        // CSR and dense cells of one graph agree on the answer.
        for pair in records.chunks(2) {
            assert_eq!(pair[0].clique_size, pair[1].clique_size);
            assert_eq!(pair[0].graph, pair[1].graph);
        }
    }

    #[test]
    fn append_records_validates_maxclique_fields() {
        let dir = std::env::temp_dir().join("mce_bench_maxclique_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_solver.json");
        let _ = std::fs::remove_file(&path);
        let record = MaxCliqueRecord {
            graph: "toy".into(),
            n: 9,
            m: 20,
            topology: "csr".into(),
            seconds: 0.01,
            clique_size: 4,
            recursive_calls: 12,
            branches_pruned_by_color: 5,
            branches_pruned_by_core: 3,
            lb_updates: 2,
            terminating_bound: "color bound".into(),
            enum_seconds: 0.2,
            enum_recursive_calls: 240,
        };
        assert!((record.calls_ratio() - 20.0).abs() < 1e-12);
        let total = append_records(&path, "test", &[record]).unwrap();
        assert_eq!(total, 1);
        let _ = std::fs::remove_file(&path);
    }
}
