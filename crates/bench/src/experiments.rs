//! The experiment implementations: one function per table / figure of the
//! paper. Each returns a [`Table`] in the same row/column shape as the paper,
//! which the `experiments` binary prints.

use hbbmc::SolverConfig;
use mce_gen::{barabasi_albert, erdos_renyi};
use mce_graph::{Graph, GraphStats};

use crate::algorithms::{ablation_algorithms, baseline_algorithms, ordering_algorithms};
use crate::datasets::{all_datasets, Dataset};
use crate::runner::{format_count, measure};
use crate::table::Table;

/// Scale factor applied to every surrogate dataset (1.0 = the registry's sizes).
/// The `--quick` flag of the binary uses a smaller value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentScale {
    /// Multiplier for dataset sizes (0 < scale ≤ 1).
    pub dataset_scale: f64,
    /// Vertex counts for the Figure 5 scalability sweep.
    pub fig5_vertex_counts: &'static [usize],
    /// Edge densities for the Figure 5 density sweep.
    pub fig5_densities: &'static [usize],
    /// Vertex count for the density sweep.
    pub fig5_density_n: usize,
}

impl ExperimentScale {
    /// The default scale: full surrogate sizes.
    pub fn full() -> Self {
        ExperimentScale {
            dataset_scale: 1.0,
            fig5_vertex_counts: &[1_000, 2_000, 4_000, 8_000, 16_000],
            fig5_densities: &[5, 10, 20, 30, 40],
            fig5_density_n: 4_000,
        }
    }

    /// A quick scale for smoke runs and CI.
    pub fn quick() -> Self {
        ExperimentScale {
            dataset_scale: 0.25,
            fig5_vertex_counts: &[500, 1_000, 2_000],
            fig5_densities: &[5, 10, 20],
            fig5_density_n: 1_000,
        }
    }

    fn build(&self, dataset: &Dataset) -> Graph {
        dataset.build_scaled(self.dataset_scale)
    }
}

/// Table I: surrogate dataset statistics (|V|, |E|, δ, τ, ρ) and whether the
/// complexity condition `δ ≥ max{3, τ + 3lnρ/ln3}` holds.
pub fn table1(scale: &ExperimentScale) -> Table {
    let mut table = Table::new(
        "Table I — surrogate dataset statistics",
        &[
            "Graph",
            "Paper name",
            "Category",
            "|V|",
            "|E|",
            "δ",
            "τ",
            "ρ",
            "δ≥max{3,τ+3lnρ/ln3}",
        ],
    );
    for dataset in all_datasets() {
        let g = scale.build(&dataset);
        let stats = GraphStats::compute(&g);
        table.add_row(vec![
            dataset.short.to_string(),
            dataset.paper_name.to_string(),
            dataset.category.to_string(),
            stats.n.to_string(),
            stats.m.to_string(),
            stats.degeneracy.to_string(),
            stats.tau.to_string(),
            format!("{:.1}", stats.rho),
            if stats.hbbmc_condition_holds() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    table
}

/// Table II: running time of `HBBMC++` against the four baselines.
pub fn table2(scale: &ExperimentScale) -> Table {
    let algorithms = baseline_algorithms();
    let mut header: Vec<&str> = vec!["Graph"];
    header.extend(algorithms.iter().map(|a| a.name));
    header.push("#cliques");
    let mut table = Table::new("Table II — comparison with baselines (seconds)", &header);
    for dataset in all_datasets() {
        let g = scale.build(&dataset);
        let mut row = vec![dataset.short.to_string()];
        let mut cliques = 0u64;
        for algo in &algorithms {
            let m = measure(&g, &algo.config);
            cliques = m.cliques;
            row.push(format!("{:.3}", m.seconds));
        }
        row.push(cliques.to_string());
        table.add_row(row);
    }
    table
}

/// Table III: ablation (`HBBMC++`, `HBBMC+`, `RDegen`) and the hybrid framework
/// with alternative VBBMC recursions (`Ref++`, `Rcd++`, `Fac++`).
pub fn table3(scale: &ExperimentScale) -> Table {
    let algorithms = ablation_algorithms();
    let mut header: Vec<&str> = vec!["Graph"];
    header.extend(algorithms.iter().map(|a| a.name));
    let mut table = Table::new(
        "Table III — ablation & hybrid framework implementations (seconds)",
        &header,
    );
    for dataset in all_datasets() {
        let g = scale.build(&dataset);
        let mut row = vec![dataset.short.to_string()];
        for algo in &algorithms {
            let m = measure(&g, &algo.config);
            row.push(format!("{:.3}", m.seconds));
        }
        table.add_row(row);
    }
    table
}

/// Table IV: effect of the depth `d` at which the hybrid framework switches
/// from edge-oriented to vertex-oriented branching.
pub fn table4(scale: &ExperimentScale) -> Table {
    let depths = [1usize, 2, 3];
    let mut table = Table::new(
        "Table IV — hybrid switch depth d (seconds / #Calls)",
        &[
            "Graph",
            "d=1 time",
            "d=1 #Calls",
            "d=2 time",
            "d=2 #Calls",
            "d=3 time",
            "d=3 #Calls",
        ],
    );
    for dataset in all_datasets() {
        let g = scale.build(&dataset);
        let mut row = vec![dataset.short.to_string()];
        for &d in &depths {
            let m = measure(&g, &SolverConfig::hbbmc_pp_depth(d));
            row.push(format!("{:.3}", m.seconds));
            row.push(format_count(m.stats.recursive_calls));
        }
        table.add_row(row);
    }
    table
}

/// Table V: effect of the early-termination level `t ∈ {0, 1, 2, 3}`.
pub fn table5(scale: &ExperimentScale) -> Table {
    let mut table = Table::new(
        "Table V — early-termination level t (seconds / #Calls / ratio)",
        &[
            "Graph",
            "t=0 time",
            "t=0 #Calls",
            "t=1 time",
            "t=1 #Calls",
            "t=1 ratio",
            "t=2 time",
            "t=2 #Calls",
            "t=2 ratio",
            "t=3 time",
            "t=3 #Calls",
            "t=3 ratio",
        ],
    );
    for dataset in all_datasets() {
        let g = scale.build(&dataset);
        let mut row = vec![dataset.short.to_string()];
        for t in 0..=3usize {
            let m = measure(&g, &SolverConfig::hbbmc_pp_et(t));
            row.push(format!("{:.3}", m.seconds));
            row.push(format_count(m.stats.recursive_calls));
            if t > 0 {
                row.push(format!("{:.1}%", 100.0 * m.stats.et_ratio()));
            }
        }
        table.add_row(row);
    }
    table
}

/// Table VI: effect of the truss-based edge ordering against the degeneracy
/// vertex ordering and the two alternative edge orderings.
pub fn table6(scale: &ExperimentScale) -> Table {
    let algorithms = ordering_algorithms();
    let mut header: Vec<&str> = vec!["Graph"];
    header.extend(algorithms.iter().map(|a| a.name));
    let mut table = Table::new(
        "Table VI — effect of the truss-based edge ordering (seconds)",
        &header,
    );
    for dataset in all_datasets() {
        let g = scale.build(&dataset);
        let mut row = vec![dataset.short.to_string()];
        for algo in &algorithms {
            let m = measure(&g, &algo.config);
            row.push(format!("{:.3}", m.seconds));
        }
        table.add_row(row);
    }
    table
}

/// Extension experiment (not a paper table): the early-termination technique
/// applied to the vertex-oriented baselines, demonstrating the paper's remark
/// that ET is orthogonal to the branching framework.
pub fn ext_et_orthogonality(scale: &ExperimentScale) -> Table {
    let pairs = [
        ("RDegen", SolverConfig::r_degen()),
        ("RDegen+ET", SolverConfig::r_degen_et()),
        ("RRcd", SolverConfig::r_rcd()),
        ("RRcd+ET", SolverConfig::r_rcd_et()),
        ("HBBMC+", SolverConfig::hbbmc_plus()),
        ("HBBMC++", SolverConfig::hbbmc_pp()),
    ];
    let mut header: Vec<&str> = vec!["Graph"];
    header.extend(pairs.iter().map(|(n, _)| *n));
    let mut table = Table::new(
        "Extension — early termination applied to every framework (seconds)",
        &header,
    );
    for dataset in all_datasets() {
        let g = scale.build(&dataset);
        let mut row = vec![dataset.short.to_string()];
        for (_, config) in &pairs {
            let m = measure(&g, config);
            row.push(format!("{:.3}", m.seconds));
        }
        table.add_row(row);
    }
    table
}

/// Which synthetic model a Figure 5 panel uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyntheticModel {
    /// Erdős–Rényi `G(n, m)`.
    ErdosRenyi,
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert,
}

fn synthesize(model: SyntheticModel, n: usize, rho: usize, seed: u64) -> Graph {
    match model {
        SyntheticModel::ErdosRenyi => erdos_renyi(n, n * rho, seed),
        SyntheticModel::BarabasiAlbert => barabasi_albert(n, rho, seed),
    }
}

/// Figure 5(a)/(b): scalability in the number of vertices at fixed density ρ = 20.
pub fn fig5_scalability(model: SyntheticModel, scale: &ExperimentScale) -> Table {
    let algorithms = baseline_algorithms();
    let title = match model {
        SyntheticModel::ErdosRenyi => "Figure 5(a) — scalability, ER model (seconds, ρ=20)",
        SyntheticModel::BarabasiAlbert => "Figure 5(b) — scalability, BA model (seconds, ρ=20)",
    };
    let mut header: Vec<&str> = vec!["n"];
    header.extend(algorithms.iter().map(|a| a.name));
    header.push("δ");
    header.push("τ");
    let mut table = Table::new(title, &header);
    for &n in scale.fig5_vertex_counts {
        let g = synthesize(model, n, 20, 42 + n as u64);
        let stats = GraphStats::compute(&g);
        let mut row = vec![n.to_string()];
        for algo in &algorithms {
            let m = measure(&g, &algo.config);
            row.push(format!("{:.3}", m.seconds));
        }
        row.push(stats.degeneracy.to_string());
        row.push(stats.tau.to_string());
        table.add_row(row);
    }
    table
}

/// Figure 5(c)/(d): effect of the edge density ρ at a fixed vertex count.
pub fn fig5_density(model: SyntheticModel, scale: &ExperimentScale) -> Table {
    let algorithms = baseline_algorithms();
    let title = match model {
        SyntheticModel::ErdosRenyi => "Figure 5(c) — varying density, ER model (seconds)",
        SyntheticModel::BarabasiAlbert => "Figure 5(d) — varying density, BA model (seconds)",
    };
    let mut header: Vec<&str> = vec!["rho"];
    header.extend(algorithms.iter().map(|a| a.name));
    header.push("δ");
    header.push("τ");
    let mut table = Table::new(title, &header);
    for &rho in scale.fig5_densities {
        let g = synthesize(model, scale.fig5_density_n, rho, 77 + rho as u64);
        let stats = GraphStats::compute(&g);
        let mut row = vec![rho.to_string()];
        for algo in &algorithms {
            let m = measure(&g, &algo.config);
            row.push(format!("{:.3}", m.seconds));
        }
        row.push(stats.degeneracy.to_string());
        row.push(stats.tau.to_string());
        table.add_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            dataset_scale: 0.04,
            fig5_vertex_counts: &[400, 800],
            fig5_densities: &[5, 10],
            fig5_density_n: 500,
        }
    }

    #[test]
    fn table1_lists_all_surrogates() {
        let t = table1(&tiny_scale());
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn table2_produces_a_row_per_dataset() {
        let t = table2(&tiny_scale());
        assert_eq!(t.len(), 16);
        assert!(t.render().contains("HBBMC++"));
    }

    #[test]
    fn table4_and_5_have_expected_columns() {
        let t4 = table4(&tiny_scale());
        assert!(t4.render().contains("d=3 #Calls"));
        let t5 = table5(&tiny_scale());
        assert!(t5.render().contains("t=3 ratio"));
    }

    #[test]
    fn fig5_tables_have_one_row_per_point() {
        let s = tiny_scale();
        assert_eq!(fig5_scalability(SyntheticModel::ErdosRenyi, &s).len(), 2);
        assert_eq!(fig5_density(SyntheticModel::BarabasiAlbert, &s).len(), 2);
    }
}
