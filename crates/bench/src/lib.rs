//! # mce-bench — experiment harness for the HBBMC reproduction
//!
//! This crate regenerates every table and figure of the paper's evaluation:
//!
//! | Experiment | Paper | Module / binary |
//! |------------|-------|-----------------|
//! | Dataset statistics | Table I | [`datasets`], `experiments table1` |
//! | Comparison with baselines | Table II | [`experiments::table2`] |
//! | Ablation + hybrid variants | Table III | [`experiments::table3`] |
//! | Hybrid switch depth | Table IV | [`experiments::table4`] |
//! | Early-termination level | Table V | [`experiments::table5`] |
//! | Truss-based edge ordering | Table VI | [`experiments::table6`] |
//! | Synthetic scalability / density | Fig. 5(a)–(d) | [`experiments::fig5_scalability`], [`experiments::fig5_density`] |
//!
//! The paper's 16 real-world graphs (networkrepository.com, up to 106M edges)
//! are not redistributable and far exceed laptop scale, so each is replaced by
//! a **synthetic surrogate** (see [`datasets`]) chosen to preserve the regime
//! that drives the paper's conclusions: the edge density ρ, the gap between
//! the degeneracy δ and the truss parameter τ, and a clique-rich community
//! structure. `EXPERIMENTS.md` at the workspace root records paper-vs-measured
//! results for every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod csr;
pub mod datasets;
pub mod experiments;
pub mod hotpath;
pub mod json;
pub mod kernels;
pub mod maxclique;
pub mod query;
pub mod runner;
pub mod scheduler;
pub mod serve;
pub mod table;

pub use algorithms::{algorithm, baseline_algorithms, Algorithm};
pub use csr::{run_csr_bench, CsrBenchOptions, CsrRecord};
pub use datasets::{all_datasets, dataset_by_name, Dataset, DatasetSpec};
pub use hotpath::{run_hotpath, HotpathOptions, HotpathRecord};
pub use json::JsonValue;
pub use kernels::{run_kernel_bench, KernelBenchOptions, KernelRecord};
pub use maxclique::{run_maxclique_bench, MaxCliqueBenchOptions, MaxCliqueRecord};
pub use query::{run_query_bench, QueryBenchOptions, QueryRecord};
pub use runner::{measure, Measurement};
pub use scheduler::{run_scheduler_bench, SchedulerBenchOptions, SchedulerRecord};
pub use serve::{run_serve_bench, ServeBenchOptions, ServeRecord};
pub use table::Table;
