//! Experiment harness binary: regenerates the paper's tables and figures and
//! records solver hot-path measurements.
//!
//! ```text
//! cargo run -p mce-bench --release --bin experiments -- \
//!     [--quick] [--threads N] [--json PATH] [--variant NAME] <experiment>...
//!
//! experiments: table1 table2 table3 table4 table5 table6 fig5a fig5b fig5c
//!              fig5d ext1 solver all
//! ```
//!
//! The `solver` experiment runs the hot-path matrix of
//! [`mce_bench::hotpath`]; with `--json PATH` each measurement is appended to
//! the JSON trajectory file (the workspace keeps one in `BENCH_solver.json`),
//! so perf history accumulates across code changes without editing code.
//! `--threads N` measures the parallel driver instead of the sequential
//! solver (it only affects `solver`).

use std::path::PathBuf;
use std::time::Instant;

use mce_bench::experiments::{
    ext_et_orthogonality, fig5_density, fig5_scalability, table1, table2, table3, table4, table5,
    table6, ExperimentScale, SyntheticModel,
};
use mce_bench::hotpath::{append_records, run_hotpath, HotpathOptions};
use mce_bench::query::{
    append_records as append_query_records, run_query_bench, QueryBenchOptions,
};
use mce_bench::scheduler::{
    append_records as append_scheduler_records, run_scheduler_bench, SchedulerBenchOptions,
};

const USAGE: &str = "usage: experiments [--quick] [--threads N] [--json PATH] [--variant NAME] <experiment>...\n\
                     experiments: table1 table2 table3 table4 table5 table6 fig5a fig5b fig5c fig5d ext1 solver scheduler query all\n\
                     (--threads/--json/--variant apply to the 'solver', 'scheduler' and 'query' experiments)";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut threads = 1usize;
    let mut variant = String::from("experiments");
    let mut json_path: Option<PathBuf> = None;
    let mut requested: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => usage(),
            },
            "--json" => match iter.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--variant" => match iter.next() {
                Some(v) => variant = v,
                None => usage(),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => requested.push(other.to_ascii_lowercase()),
        }
    }
    if requested.is_empty() {
        usage();
    }
    if requested.iter().any(|r| r == "all") {
        // Every paper experiment plus the ext1 extension; the `solver` perf
        // matrix appends to the trajectory file and only runs when named.
        requested = vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "fig5a", "fig5b", "fig5c",
            "fig5d", "ext1",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };
    println!(
        "# HBBMC reproduction experiments ({} scale)\n",
        if quick { "quick" } else { "full" }
    );

    for experiment in requested {
        let start = Instant::now();
        if experiment == "solver" {
            run_solver_experiment(quick, threads, &variant, json_path.as_deref());
            println!("(generated in {:.1}s)\n", start.elapsed().as_secs_f64());
            continue;
        }
        if experiment == "scheduler" {
            run_scheduler_experiment(quick, &variant, json_path.as_deref());
            println!("(generated in {:.1}s)\n", start.elapsed().as_secs_f64());
            continue;
        }
        if experiment == "query" {
            run_query_experiment(quick, &variant, json_path.as_deref());
            println!("(generated in {:.1}s)\n", start.elapsed().as_secs_f64());
            continue;
        }
        let table = match experiment.as_str() {
            "table1" => table1(&scale),
            "table2" => table2(&scale),
            "table3" => table3(&scale),
            "table4" => table4(&scale),
            "table5" => table5(&scale),
            "table6" => table6(&scale),
            "fig5a" => fig5_scalability(SyntheticModel::ErdosRenyi, &scale),
            "fig5b" => fig5_scalability(SyntheticModel::BarabasiAlbert, &scale),
            "fig5c" => fig5_density(SyntheticModel::ErdosRenyi, &scale),
            "fig5d" => fig5_density(SyntheticModel::BarabasiAlbert, &scale),
            "ext1" => ext_et_orthogonality(&scale),
            other => {
                eprintln!("unknown experiment '{other}'");
                usage();
            }
        };
        println!("{table}");
        println!("(generated in {:.1}s)\n", start.elapsed().as_secs_f64());
    }
}

/// The `scheduler` experiment: the skewed-graph dynamic-vs-splitting matrix,
/// optionally appended to the perf trajectory file.
fn run_scheduler_experiment(quick: bool, variant: &str, json_path: Option<&std::path::Path>) {
    let options = SchedulerBenchOptions {
        variant: variant.to_string(),
        quick,
        repeats: 2,
    };
    println!(
        "## scheduler load balance (variant={variant}, {} matrix)",
        if quick { "quick" } else { "full" }
    );
    let records = run_scheduler_bench(&options);
    if let Some(path) = json_path {
        match append_scheduler_records(path, variant, &records) {
            Ok(total) => println!(
                "appended {} records to {} ({} scheduler records total, validated)",
                records.len(),
                path.display(),
                total
            ),
            Err(e) => {
                eprintln!("experiments: JSON emission failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The `query` experiment: anchored queries vs. full enumeration, recorded
/// counter-first (the host may expose a single CPU), optionally appended to
/// the perf trajectory file.
fn run_query_experiment(quick: bool, variant: &str, json_path: Option<&std::path::Path>) {
    let options = QueryBenchOptions {
        variant: variant.to_string(),
        quick,
        repeats: 2,
    };
    println!(
        "## anchored queries (variant={variant}, {} matrix)",
        if quick { "quick" } else { "full" }
    );
    let records = run_query_bench(&options);
    if let Some(path) = json_path {
        match append_query_records(path, variant, &records) {
            Ok(total) => println!(
                "appended {} records to {} ({} query records total, validated)",
                records.len(),
                path.display(),
                total
            ),
            Err(e) => {
                eprintln!("experiments: JSON emission failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The `solver` experiment: the hot-path matrix, optionally appended to the
/// perf trajectory file.
fn run_solver_experiment(
    quick: bool,
    threads: usize,
    variant: &str,
    json_path: Option<&std::path::Path>,
) {
    let options = HotpathOptions {
        variant: variant.to_string(),
        threads,
        quick,
        repeats: 2,
    };
    println!(
        "## solver hot path (variant={variant}, threads={threads}, {} matrix)",
        if quick { "quick" } else { "full" }
    );
    let records = run_hotpath(&options);
    if let Some(path) = json_path {
        match append_records(path, variant, &records) {
            Ok(total) => println!(
                "appended {} records to {} ({} total, validated)",
                records.len(),
                path.display(),
                total
            ),
            Err(e) => {
                eprintln!("experiments: JSON emission failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
