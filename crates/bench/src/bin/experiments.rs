//! Experiment harness binary: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p mce-bench --release --bin experiments -- [--quick] <experiment>...
//!
//! experiments: table1 table2 table3 table4 table5 table6 fig5a fig5b fig5c fig5d ext1 all
//! ```

use std::time::Instant;

use mce_bench::experiments::{
    ext_et_orthogonality, fig5_density, fig5_scalability, table1, table2, table3, table4, table5,
    table6, ExperimentScale, SyntheticModel,
};

const USAGE: &str = "usage: experiments [--quick] <experiment>...\n\
                     experiments: table1 table2 table3 table4 table5 table6 fig5a fig5b fig5c fig5d ext1 all";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut requested: Vec<String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => requested.push(other.to_ascii_lowercase()),
        }
    }
    if requested.is_empty() {
        usage();
    }
    if requested.iter().any(|r| r == "all") {
        requested = vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "fig5a", "fig5b", "fig5c",
            "fig5d",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::full()
    };
    println!(
        "# HBBMC reproduction experiments ({} scale)\n",
        if quick { "quick" } else { "full" }
    );

    for experiment in requested {
        let start = Instant::now();
        let table = match experiment.as_str() {
            "table1" => table1(&scale),
            "table2" => table2(&scale),
            "table3" => table3(&scale),
            "table4" => table4(&scale),
            "table5" => table5(&scale),
            "table6" => table6(&scale),
            "fig5a" => fig5_scalability(SyntheticModel::ErdosRenyi, &scale),
            "fig5b" => fig5_scalability(SyntheticModel::BarabasiAlbert, &scale),
            "fig5c" => fig5_density(SyntheticModel::ErdosRenyi, &scale),
            "fig5d" => fig5_density(SyntheticModel::BarabasiAlbert, &scale),
            "ext1" => ext_et_orthogonality(&scale),
            other => {
                eprintln!("unknown experiment '{other}'");
                usage();
            }
        };
        println!("{table}");
        println!("(generated in {:.1}s)\n", start.elapsed().as_secs_f64());
    }
}
