//! The solver hot-path benchmark matrix behind `cargo bench --bench
//! bench_hotpath` and `experiments solver`.
//!
//! Unlike the criterion microbenchmarks (which time substrate pieces), this
//! module measures the *end-to-end enumeration hot path* — graphs × presets ×
//! thread counts — and records each measurement as a flat JSON object in the
//! workspace-level `BENCH_solver.json` trajectory file. Successive PRs append
//! runs under a new `variant` label, so the file accumulates a performance
//! history that later changes can be regressed against.
//!
//! The graph matrix deliberately includes **dense-branch microbenchmarks**
//! (Moon–Moser and a dense G(n, m) instance, where the per-branch `C ∩ N(v)`
//! refinement dominates) alongside clique-community and sparse instances, so
//! both the word-parallel kernels and the scheduler are exercised.

use std::path::Path;

use hbbmc::{par_count_maximal_cliques, SolverConfig};
use mce_gen::{barabasi_albert, erdos_renyi, moon_moser, planted_communities, PlantedConfig};
use mce_graph::Graph;

use crate::json::{append_runs, JsonValue};
use crate::runner::measure;

/// Schema tag stamped on every run record.
pub const SCHEMA: &str = "hbbmc-bench-solver/v1";

/// Options of one `bench_hotpath` invocation.
#[derive(Clone, Debug)]
pub struct HotpathOptions {
    /// Label identifying the code state being measured (e.g. `scratch-arena`).
    pub variant: String,
    /// Worker threads; `1` measures the sequential solver.
    pub threads: usize,
    /// Use the tiny graph matrix (CI smoke runs).
    pub quick: bool,
    /// Timed repetitions per cell; the best (minimum) time is recorded.
    pub repeats: usize,
}

impl Default for HotpathOptions {
    fn default() -> Self {
        HotpathOptions {
            variant: "unnamed".into(),
            threads: 1,
            quick: false,
            repeats: 2,
        }
    }
}

/// One measured cell of the matrix.
#[derive(Clone, Debug)]
pub struct HotpathRecord {
    /// Graph name.
    pub graph: String,
    /// Vertex count of the instance.
    pub n: usize,
    /// Edge count of the instance.
    pub m: usize,
    /// Preset name (paper algorithm name).
    pub preset: String,
    /// Worker threads used.
    pub threads: usize,
    /// Best wall-clock seconds over the repetitions.
    pub seconds: f64,
    /// Number of maximal cliques found.
    pub cliques: u64,
}

impl HotpathRecord {
    /// Enumeration throughput in maximal cliques per second.
    pub fn cliques_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.cliques as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// The flat JSON object appended to the trajectory file.
    pub fn to_json(&self, variant: &str) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", JsonValue::Str(SCHEMA.into())),
            ("variant", JsonValue::Str(variant.into())),
            ("graph", JsonValue::Str(self.graph.clone())),
            ("n", JsonValue::Num(self.n as f64)),
            ("m", JsonValue::Num(self.m as f64)),
            ("preset", JsonValue::Str(self.preset.clone())),
            ("threads", JsonValue::Num(self.threads as f64)),
            ("seconds", JsonValue::Num(self.seconds)),
            ("cliques", JsonValue::Num(self.cliques as f64)),
            ("cliques_per_sec", JsonValue::Num(self.cliques_per_sec())),
        ])
    }
}

/// The benchmark graph matrix. The first two instances are the dense-branch
/// microbenchmarks; the rest cover community-structured and sparse regimes.
pub fn hotpath_graphs(quick: bool) -> Vec<(&'static str, Graph)> {
    if quick {
        vec![
            ("mm_k5", moon_moser(5)),
            ("dense_er_n80", erdos_renyi(80, 1_200, 11)),
            (
                "planted_n200",
                planted_communities(&PlantedConfig {
                    n: 200,
                    communities: 24,
                    background_edges: 400,
                    ..PlantedConfig::default()
                }),
            ),
        ]
    } else {
        vec![
            ("mm_k8", moon_moser(8)),
            ("dense_er_n200", erdos_renyi(200, 6_000, 11)),
            (
                "planted_n1000",
                planted_communities(&PlantedConfig::default()),
            ),
            ("ba_n2000_k12", barabasi_albert(2_000, 12, 5)),
            ("er_n4000_rho10", erdos_renyi(4_000, 40_000, 3)),
        ]
    }
}

/// The presets measured by the hot-path matrix.
pub fn hotpath_presets() -> Vec<(&'static str, SolverConfig)> {
    vec![
        ("HBBMC++", SolverConfig::hbbmc_pp()),
        ("HBBMC+", SolverConfig::hbbmc_plus()),
        ("RDegen", SolverConfig::r_degen()),
        ("RRcd", SolverConfig::r_rcd()),
    ]
}

/// Measures one (graph, preset) cell: best of `repeats` timed runs.
pub fn measure_cell(
    name: &str,
    g: &Graph,
    preset: &str,
    config: &SolverConfig,
    threads: usize,
    repeats: usize,
) -> HotpathRecord {
    let mut best = f64::INFINITY;
    let mut cliques = 0u64;
    for _ in 0..repeats.max(1) {
        let (count, stats) = if threads > 1 {
            par_count_maximal_cliques(g, config, threads)
        } else {
            let m = measure(g, config);
            (m.cliques, m.stats)
        };
        cliques = count;
        let secs = stats.elapsed.as_secs_f64();
        if secs < best {
            best = secs;
        }
    }
    HotpathRecord {
        graph: name.to_string(),
        n: g.n(),
        m: g.m(),
        preset: preset.to_string(),
        threads,
        seconds: best,
        cliques,
    }
}

/// Runs the full matrix, printing one line per cell.
pub fn run_hotpath(options: &HotpathOptions) -> Vec<HotpathRecord> {
    let mut records = Vec::new();
    let presets = hotpath_presets();
    for (graph_name, g) in hotpath_graphs(options.quick) {
        for (preset_name, config) in &presets {
            let record = measure_cell(
                graph_name,
                &g,
                preset_name,
                config,
                options.threads,
                options.repeats,
            );
            println!(
                "{:<16} {:<9} threads={} {:>9.4}s {:>12} cliques {:>12.0} cliques/s",
                record.graph,
                record.preset,
                record.threads,
                record.seconds,
                record.cliques,
                record.cliques_per_sec()
            );
            records.push(record);
        }
    }
    records
}

/// Appends every record to the trajectory file and re-validates it.
pub fn append_records(
    path: &Path,
    variant: &str,
    records: &[HotpathRecord],
) -> Result<usize, String> {
    append_runs(path, records.iter().map(|r| r.to_json(variant)).collect())?;
    // Re-read and parse so a broken emitter fails loudly (this is the check
    // the CI smoke job relies on).
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("re-reading {}: {e}", path.display()))?;
    let parsed = crate::json::parse(&text)?;
    let runs = parsed
        .as_array()
        .ok_or_else(|| format!("{} is not a JSON array", path.display()))?;
    for run in runs {
        for key in ["schema", "variant", "graph", "preset", "seconds", "cliques"] {
            if run.get(key).is_none() {
                return Err(format!("run record missing key '{key}'"));
            }
        }
    }
    Ok(runs.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_measures_and_serialises() {
        let options = HotpathOptions {
            variant: "test".into(),
            threads: 1,
            quick: true,
            repeats: 1,
        };
        let records = run_hotpath(&options);
        assert_eq!(
            records.len(),
            hotpath_graphs(true).len() * hotpath_presets().len()
        );
        for r in &records {
            assert!(r.cliques > 0, "{} found no cliques", r.graph);
            let json = r.to_json("test");
            assert_eq!(json.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
        }
    }

    #[test]
    fn presets_agree_on_counts_per_graph() {
        for (name, g) in hotpath_graphs(true) {
            let counts: Vec<u64> = hotpath_presets()
                .iter()
                .map(|(_, c)| measure_cell(name, &g, "x", c, 1, 1).cliques)
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "{name}: presets disagree: {counts:?}"
            );
        }
    }

    #[test]
    fn append_records_validates_output() {
        let dir = std::env::temp_dir().join("mce_bench_hotpath_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_solver.json");
        let _ = std::fs::remove_file(&path);
        let record = HotpathRecord {
            graph: "toy".into(),
            n: 4,
            m: 6,
            preset: "HBBMC++".into(),
            threads: 1,
            seconds: 0.001,
            cliques: 1,
        };
        let total = append_records(&path, "test", &[record.clone(), record]).unwrap();
        assert_eq!(total, 2);
        let _ = std::fs::remove_file(&path);
    }
}
