//! The kernel-backend benchmark behind `cargo bench --bench bench_kernels`.
//!
//! Two layers of cells, both appended to the `BENCH_solver.json` trajectory
//! under schema [`SCHEMA`]:
//!
//! * **`words` cells** — raw throughput (words/sec) of every fused word
//!   kernel ([`Kernels`]) on synthetic word buffers, one cell per
//!   `(backend, op)`. These run *in-process* for every backend the host
//!   supports: the per-backend function tables ([`KernelBackend::table`])
//!   bypass the process-wide dispatch lock, so one invocation produces the
//!   scalar-vs-SIMD comparison directly.
//! * **end-to-end cells** — the enumeration hot path (`hotpath`), the
//!   branch-and-bound maximum clique (`maxclique`) and the bounded top-k
//!   search (`topk`), per backend. The solver reaches the kernels through
//!   the process-wide table, which is locked once per process — so the
//!   parent re-executes *itself* once per backend (`--kernels-child`, with
//!   `MCE_KERNEL` pinned) and collects the child's records from a marker
//!   line on stdout.
//!
//! The `topk` cell doubles as a gate: it runs the bounded search against a
//! [`TopKReporter`] riding full enumeration and fails the benchmark unless
//! the selections are identical *and* the bounded search evaluated strictly
//! fewer branches.
//!
//! [`Kernels`]: mce_graph::Kernels
//! [`TopKReporter`]: hbbmc::TopKReporter

use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

use hbbmc::{
    maximum_clique_bb, run_query, CountReporter, Query, QuerySpec, QueryValue, SolverConfig,
    TopKReporter,
};
use mce_gen::{erdos_renyi, moon_moser};
use mce_graph::kernels::{self, KernelBackend};
use mce_graph::Graph;

use crate::json::{append_runs, parse, JsonValue};

/// Schema tag stamped on every kernel benchmark record.
pub const SCHEMA: &str = "hbbmc-bench-kernels/v1";

/// Marker prefix of the single stdout line a `--kernels-child` re-exec uses
/// to hand its records back to the parent process.
pub const CHILD_MARKER: &str = "#kernels-child-records# ";

/// Options of one kernel benchmark invocation.
#[derive(Clone, Debug)]
pub struct KernelBenchOptions {
    /// Label identifying the code state being measured.
    pub variant: String,
    /// Use small buffers and the tiny graph matrix (CI smoke runs).
    pub quick: bool,
    /// Timed repetitions per cell; the best (minimum) time is recorded.
    pub repeats: usize,
}

impl Default for KernelBenchOptions {
    fn default() -> Self {
        KernelBenchOptions {
            variant: "unnamed".into(),
            quick: false,
            repeats: 2,
        }
    }
}

/// One measured kernel cell — a raw word-kernel throughput cell or an
/// end-to-end solver cell, distinguished by `kind`.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelRecord {
    /// `"words"`, `"hotpath"`, `"maxclique"` or `"topk"`.
    pub kind: String,
    /// Kernel backend the cell ran under.
    pub backend: String,
    /// Fused word op of a `words` cell; `"-"` for end-to-end cells.
    pub op: String,
    /// Graph (or synthetic buffer) name.
    pub graph: String,
    /// Vertex count (buffer word count for `words` cells).
    pub n: usize,
    /// Edge count (0 for `words` cells).
    pub m: usize,
    /// Preset / cell family label.
    pub preset: String,
    /// Worker threads (always 1: the kernels are a per-thread story).
    pub threads: usize,
    /// Best wall-clock seconds over the repetitions.
    pub seconds: f64,
    /// Maximal cliques found (selected cliques for `topk`, 0 for `words`).
    pub cliques: u64,
    /// Words processed per second (`words` cells; 0 otherwise).
    pub words_per_sec: f64,
    /// Recursive branch evaluations (`maxclique`/`topk` cells).
    pub branch_evals: u64,
    /// Branch evaluations of the enumeration-riding baseline (`topk` only).
    pub riding_branch_evals: u64,
}

impl KernelRecord {
    /// The flat JSON object appended to the trajectory file. Every record
    /// carries the trajectory-wide required keys (`schema`, `variant`,
    /// `graph`, `preset`, `seconds`, `cliques`) so the shared-file
    /// validators of the other benchmarks keep passing.
    pub fn to_json(&self, variant: &str) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", JsonValue::Str(SCHEMA.into())),
            ("variant", JsonValue::Str(variant.into())),
            ("kind", JsonValue::Str(self.kind.clone())),
            ("backend", JsonValue::Str(self.backend.clone())),
            ("op", JsonValue::Str(self.op.clone())),
            ("graph", JsonValue::Str(self.graph.clone())),
            ("n", JsonValue::Num(self.n as f64)),
            ("m", JsonValue::Num(self.m as f64)),
            ("preset", JsonValue::Str(self.preset.clone())),
            ("threads", JsonValue::Num(self.threads as f64)),
            ("seconds", JsonValue::Num(self.seconds)),
            ("cliques", JsonValue::Num(self.cliques as f64)),
            ("words_per_sec", JsonValue::Num(self.words_per_sec)),
            ("branch_evals", JsonValue::Num(self.branch_evals as f64)),
            (
                "riding_branch_evals",
                JsonValue::Num(self.riding_branch_evals as f64),
            ),
        ])
    }

    /// Rebuilds a record from its JSON form (the child→parent hand-off).
    pub fn from_json(v: &JsonValue) -> Result<KernelRecord, String> {
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("kernel record missing string key '{key}'"))
        };
        let f = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("kernel record missing number key '{key}'"))
        };
        Ok(KernelRecord {
            kind: s("kind")?,
            backend: s("backend")?,
            op: s("op")?,
            graph: s("graph")?,
            n: f("n")? as usize,
            m: f("m")? as usize,
            preset: s("preset")?,
            threads: f("threads")? as usize,
            seconds: f("seconds")?,
            cliques: f("cliques")? as u64,
            words_per_sec: f("words_per_sec")?,
            branch_evals: f("branch_evals")? as u64,
            riding_branch_evals: f("riding_branch_evals")? as u64,
        })
    }
}

/// Deterministic word soup for the synthetic buffers (splitmix-style).
fn word_soup(len: usize, salt: u64) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            let mut x = (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt;
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^ (x >> 27)
        })
        .collect()
}

/// Best seconds over `repeats` timed runs of `body`.
fn best_of(repeats: usize, mut body: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The in-process raw word-kernel cells: every op of every backend the host
/// supports, on identical buffers, so the scalar-vs-SIMD words/sec
/// comparison comes from a single invocation.
pub fn run_word_cells(options: &KernelBenchOptions) -> Vec<KernelRecord> {
    let words = if options.quick { 512 } else { 2_048 };
    let iters = if options.quick { 1_000 } else { 8_000 };
    let a = word_soup(words, 0x5bf0_3635);
    let b = word_soup(words, 0xc2b2_ae3d);
    let mut dst = vec![0u64; words];
    let mut bits: Vec<usize> = Vec::with_capacity(words * 64);
    let graph = format!("words{words}");

    let cell = |backend: KernelBackend, op: &str, seconds: f64| KernelRecord {
        kind: "words".into(),
        backend: backend.name().into(),
        op: op.into(),
        graph: graph.clone(),
        n: words,
        m: 0,
        preset: "kernel-words".into(),
        threads: 1,
        seconds,
        cliques: 0,
        words_per_sec: if seconds > 0.0 {
            (words * iters) as f64 / seconds
        } else {
            0.0
        },
        branch_evals: 0,
        riding_branch_evals: 0,
    };

    let mut records = Vec::new();
    for backend in KernelBackend::available() {
        let k = backend.table().expect("available implies table");
        let repeats = options.repeats;

        let secs = best_of(repeats, || {
            for _ in 0..iters {
                black_box((k.intersect_count)(&a, &b, &mut dst));
            }
        });
        records.push(cell(backend, "intersect_count", secs));

        let secs = best_of(repeats, || {
            for _ in 0..iters {
                black_box((k.intersection_len)(&a, &b));
            }
        });
        records.push(cell(backend, "intersection_len", secs));

        let secs = best_of(repeats, || {
            for _ in 0..iters {
                (k.difference)(&a, &b, &mut dst);
                black_box(dst[0]);
            }
        });
        records.push(cell(backend, "difference", secs));

        let secs = best_of(repeats, || {
            for _ in 0..iters {
                bits.clear();
                (k.and_not_collect)(&a, &b, &mut bits);
                black_box(bits.len());
            }
        });
        records.push(cell(backend, "and_not_collect", secs));

        let secs = best_of(repeats, || {
            for _ in 0..iters {
                black_box((k.popcount)(&a));
            }
        });
        records.push(cell(backend, "popcount", secs));
    }
    records
}

/// The end-to-end graph instances (dense-branch regimes where the word
/// kernels dominate the profile).
fn end_to_end_graphs(quick: bool) -> Vec<(&'static str, Graph)> {
    if quick {
        vec![
            ("mm_k5", moon_moser(5)),
            ("dense_er_n80", erdos_renyi(80, 1_200, 11)),
        ]
    } else {
        vec![
            ("mm_k8", moon_moser(8)),
            ("dense_er_n200", erdos_renyi(200, 6_000, 11)),
        ]
    }
}

/// The end-to-end cells for the *process-wide* backend: enumeration hot
/// path, branch-and-bound maximum clique, and the bounded top-k search
/// (gated against its enumeration-riding baseline). Run from a
/// `--kernels-child` re-exec with `MCE_KERNEL` pinned; `expect_backend`
/// double-checks the pin took.
pub fn run_end_to_end_cells(
    options: &KernelBenchOptions,
    expect_backend: Option<&str>,
) -> Result<Vec<KernelRecord>, String> {
    let backend = kernels::active_backend().name();
    if let Some(expected) = expect_backend {
        if backend != expected {
            return Err(format!(
                "expected kernel backend '{expected}', resolved '{backend}' \
                 (is MCE_KERNEL pinned?)"
            ));
        }
    }

    let mut records = Vec::new();
    for (name, g) in end_to_end_graphs(options.quick) {
        // Hot path: sequential HBBMC++ enumeration.
        let cell = crate::hotpath::measure_cell(
            name,
            &g,
            "HBBMC++",
            &SolverConfig::hbbmc_pp(),
            1,
            options.repeats,
        );
        records.push(KernelRecord {
            kind: "hotpath".into(),
            backend: backend.into(),
            op: "-".into(),
            graph: name.into(),
            n: g.n(),
            m: g.m(),
            preset: "HBBMC++".into(),
            threads: 1,
            seconds: cell.seconds,
            cliques: cell.cliques,
            words_per_sec: 0.0,
            branch_evals: 0,
            riding_branch_evals: 0,
        });

        // Maximum clique: the dedicated B&B engine.
        let mut best_secs = f64::INFINITY;
        let mut clique_size = 0usize;
        let mut evals = 0u64;
        for _ in 0..options.repeats.max(1) {
            let start = Instant::now();
            let (best, stats) = maximum_clique_bb(&g);
            best_secs = best_secs.min(start.elapsed().as_secs_f64());
            clique_size = best.len();
            evals = stats.recursive_calls;
        }
        records.push(KernelRecord {
            kind: "maxclique".into(),
            backend: backend.into(),
            op: "-".into(),
            graph: name.into(),
            n: g.n(),
            m: g.m(),
            preset: "bb".into(),
            threads: 1,
            seconds: best_secs,
            cliques: clique_size as u64,
            words_per_sec: 0.0,
            branch_evals: evals,
            riding_branch_evals: 0,
        });

        // Top-k: the bounded search vs. a TopKReporter riding enumeration.
        records.push(topk_cell(name, &g, 8, options.repeats)?);
    }
    Ok(records)
}

/// Measures one bounded top-k cell and gates it against the
/// enumeration-riding baseline: identical selection, strictly fewer branch
/// evaluations.
fn topk_cell(name: &str, g: &Graph, k: usize, repeats: usize) -> Result<KernelRecord, String> {
    let mut riding = TopKReporter::new(k);
    let full = run_query(g, Query::new(QuerySpec::Enumerate), &mut riding)
        .map_err(|e| format!("{name}: enumerate baseline failed: {e}"))?;
    let expected = riding.into_cliques();

    let mut best_secs = f64::INFINITY;
    let mut bounded_evals = 0u64;
    let mut got = Vec::new();
    for _ in 0..repeats.max(1) {
        let mut ignored = CountReporter::new();
        let start = Instant::now();
        let result = run_query(g, Query::new(QuerySpec::TopKBySize { k }), &mut ignored)
            .map_err(|e| format!("{name}: top-k query failed: {e}"))?;
        best_secs = best_secs.min(start.elapsed().as_secs_f64());
        bounded_evals = result.stats.recursive_calls;
        got = match result.value {
            QueryValue::TopK(cliques) => cliques,
            other => return Err(format!("{name}: top-k returned {other:?}")),
        };
    }
    if got != expected {
        return Err(format!(
            "{name}: bounded top-{k} selection diverged from the riding baseline"
        ));
    }
    if bounded_evals >= full.stats.recursive_calls {
        return Err(format!(
            "{name}: bounded top-{k} search evaluated {bounded_evals} branches, \
             baseline {} — the bounds bought nothing",
            full.stats.recursive_calls
        ));
    }
    Ok(KernelRecord {
        kind: "topk".into(),
        backend: kernels::active_backend().name().into(),
        op: "-".into(),
        graph: name.into(),
        n: g.n(),
        m: g.m(),
        preset: format!("topk{k}"),
        threads: 1,
        seconds: best_secs,
        cliques: got.len() as u64,
        words_per_sec: 0.0,
        branch_evals: bounded_evals,
        riding_branch_evals: full.stats.recursive_calls,
    })
}

/// Renders the child→parent marker line for `records`.
pub fn child_marker_line(records: &[KernelRecord], variant: &str) -> String {
    let arr = JsonValue::Arr(records.iter().map(|r| r.to_json(variant)).collect());
    format!("{CHILD_MARKER}{}", arr.render())
}

/// Parses records back out of a child's stdout.
pub fn parse_child_records(stdout: &str) -> Result<Vec<KernelRecord>, String> {
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix(CHILD_MARKER))
        .ok_or_else(|| "child produced no record marker line".to_string())?;
    let parsed = parse(line)?;
    let arr = parsed
        .as_array()
        .ok_or_else(|| "child marker line is not a JSON array".to_string())?;
    arr.iter().map(KernelRecord::from_json).collect()
}

/// Spawns `self_exe --kernels-child` with `MCE_KERNEL` pinned to `backend`
/// and returns the child's end-to-end records.
fn spawn_end_to_end(
    self_exe: &Path,
    backend: KernelBackend,
    options: &KernelBenchOptions,
) -> Result<Vec<KernelRecord>, String> {
    let mut cmd = std::process::Command::new(self_exe);
    cmd.arg("--kernels-child")
        .arg("--repeats")
        .arg(options.repeats.to_string())
        .arg("--variant")
        .arg(&options.variant)
        .env(kernels::ENV_VAR, backend.name());
    if options.quick {
        cmd.arg("--quick");
    }
    let out = cmd
        .output()
        .map_err(|e| format!("spawning {} for backend {backend}: {e}", self_exe.display()))?;
    if !out.status.success() {
        return Err(format!(
            "backend {backend} child failed ({}): {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Forward the child's human-readable lines for visibility.
    for line in stdout.lines().filter(|l| !l.starts_with(CHILD_MARKER)) {
        println!("{line}");
    }
    parse_child_records(&stdout)
}

/// Runs the full kernel matrix: in-process word cells for every supported
/// backend, then one self-re-exec per backend for the end-to-end cells.
/// `self_exe` is the benchmark executable itself (`std::env::current_exe`).
pub fn run_kernel_bench(
    self_exe: &Path,
    options: &KernelBenchOptions,
) -> Result<Vec<KernelRecord>, String> {
    let mut records = run_word_cells(options);
    for r in &records {
        println!(
            "{:<10} {:<16} {:<10} {:>9.4}s {:>14.0} words/s",
            r.backend, r.op, r.graph, r.seconds, r.words_per_sec
        );
    }
    for backend in KernelBackend::available() {
        println!("# end-to-end cells under backend {backend}");
        records.extend(spawn_end_to_end(self_exe, backend, options)?);
    }
    Ok(records)
}

/// Appends every record to the trajectory file and re-validates it,
/// checking the full kernel key set on every record of this benchmark's
/// schema (the file is shared with the other benchmarks, whose schemas
/// carry different keys). Returns the number of kernel records in the file.
pub fn append_records(
    path: &Path,
    variant: &str,
    records: &[KernelRecord],
) -> Result<usize, String> {
    append_runs(path, records.iter().map(|r| r.to_json(variant)).collect())?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("re-reading {}: {e}", path.display()))?;
    let parsed = parse(&text)?;
    let runs = parsed
        .as_array()
        .ok_or_else(|| format!("{} is not a JSON array", path.display()))?;
    let mut kernel_runs = 0usize;
    for run in runs {
        if run.get("schema").and_then(JsonValue::as_str) != Some(SCHEMA) {
            continue;
        }
        kernel_runs += 1;
        for key in [
            "variant",
            "kind",
            "backend",
            "op",
            "graph",
            "preset",
            "seconds",
            "cliques",
            "words_per_sec",
            "branch_evals",
            "riding_branch_evals",
        ] {
            if run.get(key).is_none() {
                return Err(format!("kernel record missing key '{key}'"));
            }
        }
    }
    Ok(kernel_runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> KernelBenchOptions {
        KernelBenchOptions {
            variant: "test".into(),
            quick: true,
            repeats: 1,
        }
    }

    #[test]
    fn word_cells_cover_every_backend_and_op() {
        let records = run_word_cells(&quick_options());
        let backends = KernelBackend::available().len();
        assert_eq!(records.len(), backends * 5);
        for r in &records {
            assert_eq!(r.kind, "words");
            assert!(
                r.words_per_sec > 0.0,
                "{}/{} measured nothing",
                r.backend,
                r.op
            );
            let json = r.to_json("test");
            assert_eq!(json.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
            for key in ["variant", "graph", "preset", "seconds", "cliques"] {
                assert!(json.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn end_to_end_cells_measure_and_gate_topk() {
        let records = run_end_to_end_cells(&quick_options(), None).expect("cells run");
        // 2 graphs × (hotpath, maxclique, topk).
        assert_eq!(records.len(), 6);
        let topk: Vec<_> = records.iter().filter(|r| r.kind == "topk").collect();
        assert_eq!(topk.len(), 2);
        for r in topk {
            assert!(
                r.branch_evals < r.riding_branch_evals,
                "{}: {} >= {}",
                r.graph,
                r.branch_evals,
                r.riding_branch_evals
            );
            assert!(r.cliques > 0);
        }
        for r in records.iter().filter(|r| r.kind == "hotpath") {
            assert!(r.cliques > 0, "{} found no cliques", r.graph);
        }
    }

    #[test]
    fn records_round_trip_through_the_child_marker() {
        let records = run_word_cells(&KernelBenchOptions {
            variant: "rt".into(),
            quick: true,
            repeats: 1,
        });
        let line = child_marker_line(&records, "rt");
        let parsed = parse_child_records(&line).expect("round trip");
        assert_eq!(parsed, records);
    }

    #[test]
    fn append_records_validates_the_shared_file() {
        let dir = std::env::temp_dir().join("mce_bench_kernels_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_solver.json");
        let _ = std::fs::remove_file(&path);
        let records = run_word_cells(&quick_options());
        let total = append_records(&path, "test", &records).unwrap();
        assert_eq!(total, records.len());
        let _ = std::fs::remove_file(&path);
    }
}
