//! The serve-layer benchmark behind `cargo bench --bench bench_serve` and
//! the `serve` variant cells in `BENCH_solver.json`.
//!
//! Spins up an in-process `mce serve` daemon ([`mce_cli::serve`]) per cell
//! and drives it with concurrent wire clients issuing a deterministic mix of
//! complete and clique-limited streaming queries over planted-community
//! graphs. As with the rest of the harness the recording host exposes a
//! single CPU, so the headline columns are the server's own **admission and
//! session counters** — `sessions_started` / `sessions_completed` /
//! `sessions_truncated` / `sessions_rejected` and `peak_sessions` (how hard
//! the admission gate was driven) — with end-to-end `queries_per_sec`
//! recorded alongside for completeness.
//!
//! One flat JSON object per cell is appended to the `BENCH_solver.json`
//! trajectory (schema [`SCHEMA`]), pulling the counters straight off the
//! server's `metrics` wire response so the benchmark exercises the same
//! surface a monitoring client would.

use std::path::Path;
use std::time::{Duration, Instant};

use mce_cli::serve::testkit::{load_request, TestClient, TestServer};
use mce_cli::serve::ServeConfig;
use mce_gen::{planted_communities, PlantedConfig};
use mce_graph::Graph;

use crate::json::{append_runs, parse, JsonValue};

/// Schema tag stamped on every serve-benchmark record.
pub const SCHEMA: &str = "hbbmc-bench-serve/v1";

/// Schema tag stamped on every chaos-variant record (`--chaos`): the same
/// fleet, but with a panic-injecting graph in the query mix, degraded
/// admission armed and an idle client left for the reaper.
pub const CHAOS_SCHEMA: &str = "hbbmc-bench-serve-chaos/v1";

/// Options of one serve-benchmark invocation.
#[derive(Clone, Debug)]
pub struct ServeBenchOptions {
    /// Label identifying the code state being measured.
    pub variant: String,
    /// Use the tiny workload matrix (CI smoke runs).
    pub quick: bool,
    /// Timed repetitions per cell; the best (minimum-time) run is recorded.
    pub repeats: usize,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        ServeBenchOptions {
            variant: "unnamed".into(),
            quick: false,
            repeats: 2,
        }
    }
}

/// One measured serve cell: a client fleet driven against a fresh daemon.
#[derive(Clone, Debug)]
pub struct ServeRecord {
    /// Graph name.
    pub graph: String,
    /// Vertex count of the instance.
    pub n: usize,
    /// Edge count of the instance.
    pub m: usize,
    /// Preset name the server ran (paper algorithm name).
    pub preset: String,
    /// Concurrent wire clients in the fleet.
    pub clients: usize,
    /// Total queries issued across the fleet.
    pub queries: u64,
    /// The server's admission cap (`--max-sessions`).
    pub max_sessions: usize,
    /// Best wall-clock seconds for the whole fleet to drain.
    pub seconds: f64,
    /// Maximal cliques streamed across all sessions (deterministic).
    pub cliques: u64,
    /// Sessions admitted and run, from the server's `metrics` response.
    pub sessions_started: u64,
    /// Sessions that ran to completion.
    pub sessions_completed: u64,
    /// Sessions cut by a budget (the clique-limited half of the mix).
    pub sessions_truncated: u64,
    /// Sessions bounced by admission control (`queue:false` under load).
    pub sessions_rejected: u64,
    /// High-water mark of concurrently running sessions.
    pub peak_sessions: u64,
}

impl ServeRecord {
    /// End-to-end query throughput of the best run.
    pub fn queries_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.queries as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// The flat JSON object appended to the trajectory file.
    pub fn to_json(&self, variant: &str) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", JsonValue::Str(SCHEMA.into())),
            ("variant", JsonValue::Str(variant.into())),
            ("graph", JsonValue::Str(self.graph.clone())),
            ("n", JsonValue::Num(self.n as f64)),
            ("m", JsonValue::Num(self.m as f64)),
            ("preset", JsonValue::Str(self.preset.clone())),
            ("clients", JsonValue::Num(self.clients as f64)),
            ("queries", JsonValue::Num(self.queries as f64)),
            ("max_sessions", JsonValue::Num(self.max_sessions as f64)),
            ("seconds", JsonValue::Num(self.seconds)),
            ("queries_per_sec", JsonValue::Num(self.queries_per_sec())),
            ("cliques", JsonValue::Num(self.cliques as f64)),
            (
                "sessions_started",
                JsonValue::Num(self.sessions_started as f64),
            ),
            (
                "sessions_completed",
                JsonValue::Num(self.sessions_completed as f64),
            ),
            (
                "sessions_truncated",
                JsonValue::Num(self.sessions_truncated as f64),
            ),
            (
                "sessions_rejected",
                JsonValue::Num(self.sessions_rejected as f64),
            ),
            ("peak_sessions", JsonValue::Num(self.peak_sessions as f64)),
        ])
    }
}

/// One measured chaos cell: the fault-injected fleet of [`run_chaos_bench`],
/// summarised by the server's fault-tolerance counters.
#[derive(Clone, Debug)]
pub struct ChaosRecord {
    /// Graph name.
    pub graph: String,
    /// Vertex count of the instance.
    pub n: usize,
    /// Edge count of the instance.
    pub m: usize,
    /// Preset name the server ran.
    pub preset: String,
    /// Concurrent wire clients in the fleet.
    pub clients: usize,
    /// Total queries issued across the fleet (healthy + fault-injected).
    pub queries: u64,
    /// The server's admission cap.
    pub max_sessions: usize,
    /// Best wall-clock seconds for the whole fleet to drain.
    pub seconds: f64,
    /// Maximal cliques streamed across all surviving sessions.
    pub cliques: u64,
    /// Sessions admitted and run.
    pub sessions_started: u64,
    /// Sessions admitted past the degradation high-water mark.
    pub sessions_degraded: u64,
    /// Connections reaped by the idle timeout.
    pub connections_reaped: u64,
    /// Worker panics contained to a typed `internal-error` frame.
    pub panics_contained: u64,
}

impl ChaosRecord {
    /// End-to-end query throughput of the best run, faults included.
    pub fn queries_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.queries as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// The flat JSON object appended to the trajectory file.
    pub fn to_json(&self, variant: &str) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", JsonValue::Str(CHAOS_SCHEMA.into())),
            ("variant", JsonValue::Str(variant.into())),
            ("graph", JsonValue::Str(self.graph.clone())),
            ("n", JsonValue::Num(self.n as f64)),
            ("m", JsonValue::Num(self.m as f64)),
            ("preset", JsonValue::Str(self.preset.clone())),
            ("clients", JsonValue::Num(self.clients as f64)),
            ("queries", JsonValue::Num(self.queries as f64)),
            ("max_sessions", JsonValue::Num(self.max_sessions as f64)),
            ("seconds", JsonValue::Num(self.seconds)),
            ("queries_per_sec", JsonValue::Num(self.queries_per_sec())),
            ("cliques", JsonValue::Num(self.cliques as f64)),
            (
                "sessions_started",
                JsonValue::Num(self.sessions_started as f64),
            ),
            (
                "sessions_degraded",
                JsonValue::Num(self.sessions_degraded as f64),
            ),
            (
                "connections_reaped",
                JsonValue::Num(self.connections_reaped as f64),
            ),
            (
                "panics_contained",
                JsonValue::Num(self.panics_contained as f64),
            ),
        ])
    }
}

/// The benchmark instances: `(name, graph, clients, queries per client)`.
/// Community-structured graphs keep per-query work meaningful while staying
/// small enough that admission (not enumeration) dominates the cell.
pub fn serve_workloads(quick: bool) -> Vec<(&'static str, Graph, usize, usize)> {
    let planted = |n: usize, communities: usize, seed: u64| {
        planted_communities(&PlantedConfig {
            n,
            communities,
            min_size: 4,
            max_size: 9,
            intra_probability: 1.0,
            background_edges: 2 * n,
            seed,
        })
    };
    if quick {
        vec![("planted_n60", planted(60, 5, 5), 3, 4)]
    } else {
        vec![
            ("planted_n300", planted(300, 20, 5), 4, 6),
            ("planted_n1000", planted(1_000, 40, 5), 4, 6),
        ]
    }
}

/// Renders a graph as whitespace edge-list text for the wire `load` request.
fn edge_list_text(g: &Graph) -> String {
    let mut text = String::new();
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if u < v {
                text.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    text
}

/// The per-client query mix: even slots run the full deterministic stream,
/// odd slots are clique-limited (exercising budget truncation). All queue at
/// the admission gate rather than bouncing, so the counters stay exact.
fn query_line(slot: usize) -> &'static str {
    if slot % 2 == 0 {
        r#"{"op":"query","graph":"g","queue":true}"#
    } else {
        r#"{"op":"query","graph":"g","limit":5,"queue":true}"#
    }
}

/// Counters scraped from one `metrics` wire response.
struct MetricsSnapshot {
    cliques_emitted: u64,
    sessions_started: u64,
    sessions_completed: u64,
    sessions_truncated: u64,
    sessions_rejected: u64,
    peak_sessions: u64,
    sessions_degraded: u64,
    connections_reaped: u64,
    panics_contained: u64,
}

fn scrape_metrics(client: &mut TestClient) -> MetricsSnapshot {
    let frames = client
        .roundtrip(r#"{"op":"metrics"}"#)
        .expect("metrics roundtrip");
    assert_eq!(frames.len(), 1, "metrics is a single frame: {frames:?}");
    let value = parse(&frames[0]).expect("metrics frame parses");
    let counter = |key: &str| -> u64 {
        value
            .get(key)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("metrics frame missing '{key}'")) as u64
    };
    MetricsSnapshot {
        cliques_emitted: counter("cliques_emitted"),
        sessions_started: counter("sessions_started"),
        sessions_completed: counter("sessions_completed"),
        sessions_truncated: counter("sessions_truncated"),
        sessions_rejected: counter("sessions_rejected"),
        peak_sessions: counter("peak_sessions"),
        sessions_degraded: counter("sessions_degraded"),
        connections_reaped: counter("connections_reaped"),
        panics_contained: counter("panics_contained"),
    }
}

/// One timed fleet run against a fresh server; returns the elapsed seconds
/// and the server's final counters.
fn run_fleet(
    text: &str,
    clients: usize,
    queries_each: usize,
    max_sessions: usize,
) -> (f64, MetricsSnapshot) {
    let server = TestServer::start(ServeConfig {
        max_sessions,
        ..ServeConfig::default()
    })
    .expect("start serve daemon");
    let mut admin = server.connect().expect("admin connection");
    let frames = admin
        .roundtrip(&load_request("g", text))
        .expect("load roundtrip");
    assert!(
        frames[0].starts_with(r#"{"type":"loaded""#),
        "load failed: {frames:?}"
    );

    let addr = server.addr();
    let start = Instant::now();
    let fleet: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = TestClient::connect(addr).expect("fleet connection");
                for slot in 0..queries_each {
                    let frames = client.roundtrip(query_line(slot)).expect("query roundtrip");
                    let end = frames.last().expect("non-empty response");
                    assert!(end.starts_with(r#"{"type":"end""#), "query failed: {end}");
                }
            })
        })
        .collect();
    for worker in fleet {
        worker.join().expect("fleet client panicked");
    }
    let seconds = start.elapsed().as_secs_f64();
    (seconds, scrape_metrics(&mut admin))
}

/// One timed chaos fleet against a fresh server with faults armed: every
/// third query hits a panic-injecting graph (and is answered with a typed
/// `internal-error` frame), admission degrades past the high-water mark,
/// and one deliberately idle connection is left for the reaper. Returns the
/// elapsed seconds and the server's final counters.
fn run_chaos_fleet(
    text: &str,
    clients: usize,
    queries_each: usize,
    max_sessions: usize,
) -> (f64, MetricsSnapshot) {
    let idle_timeout = Duration::from_millis(200);
    let server = TestServer::start(ServeConfig {
        max_sessions,
        degrade_high_water: Some(max_sessions.saturating_sub(1)),
        chaos_panic_graph: Some("chaos".to_string()),
        chaos_panic_after: 3,
        idle_timeout: Some(idle_timeout),
        ..ServeConfig::default()
    })
    .expect("start serve daemon");
    let mut admin = server.connect().expect("admin connection");
    for name in ["g", "chaos"] {
        let frames = admin
            .roundtrip(&load_request(name, text))
            .expect("load roundtrip");
        assert!(
            frames[0].starts_with(r#"{"type":"loaded""#),
            "load failed: {frames:?}"
        );
    }

    let addr = server.addr();
    let start = Instant::now();
    // The idler never sends a request; the reaper must close it.
    let idler = std::thread::spawn(move || {
        let mut client = TestClient::connect(addr).expect("idler connection");
        let rest = client.read_to_eof().expect("idler read");
        assert!(rest.is_empty(), "frames on an idle connection: {rest:?}");
    });
    let fleet: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = TestClient::connect(addr).expect("fleet connection");
                for slot in 0..queries_each {
                    if slot % 3 == 2 {
                        let frames = client
                            .roundtrip(r#"{"op":"query","graph":"chaos","queue":true}"#)
                            .expect("chaos roundtrip");
                        let end = frames.last().expect("non-empty response");
                        assert!(
                            end.contains(r#""code":"internal-error""#),
                            "chaos query was not contained: {end}"
                        );
                    } else {
                        let frames = client.roundtrip(query_line(slot)).expect("query roundtrip");
                        let end = frames.last().expect("non-empty response");
                        assert!(end.starts_with(r#"{"type":"end""#), "query failed: {end}");
                    }
                }
            })
        })
        .collect();
    for worker in fleet {
        worker.join().expect("fleet client panicked");
    }
    idler.join().expect("idler panicked");
    let seconds = start.elapsed().as_secs_f64();
    // The admin connection sat idle through the fleet and may have been
    // reaped too; scrape the counters over a fresh connection.
    let mut admin = server.connect().expect("metrics connection");
    (seconds, scrape_metrics(&mut admin))
}

/// Runs the serve workload matrix, printing one line per cell.
pub fn run_serve_bench(options: &ServeBenchOptions) -> Vec<ServeRecord> {
    let max_sessions = 2;
    let mut records = Vec::new();
    for (name, g, clients, queries_each) in serve_workloads(options.quick) {
        let text = edge_list_text(&g);
        let queries = (clients * queries_each) as u64;
        let mut best: Option<(f64, MetricsSnapshot)> = None;
        for _ in 0..options.repeats.max(1) {
            let run = run_fleet(&text, clients, queries_each, max_sessions);
            if best.as_ref().map_or(true, |(s, _)| run.0 < *s) {
                best = Some(run);
            }
        }
        let (seconds, metrics) = best.expect("at least one repeat");
        assert_eq!(
            metrics.sessions_started, queries,
            "{name}: admission lost sessions"
        );
        let record = ServeRecord {
            graph: name.to_string(),
            n: g.n(),
            m: g.m(),
            preset: ServeConfig::default().preset,
            clients,
            queries,
            max_sessions,
            seconds,
            cliques: metrics.cliques_emitted,
            sessions_started: metrics.sessions_started,
            sessions_completed: metrics.sessions_completed,
            sessions_truncated: metrics.sessions_truncated,
            sessions_rejected: metrics.sessions_rejected,
            peak_sessions: metrics.peak_sessions,
        };
        println!(
            "{:<14} clients={} queries={:>3} {:>8.4}s {:>8.1} q/s  sessions {}/{}/{} \
             (done/cut/rejected), peak {}",
            record.graph,
            record.clients,
            record.queries,
            record.seconds,
            record.queries_per_sec(),
            record.sessions_completed,
            record.sessions_truncated,
            record.sessions_rejected,
            record.peak_sessions,
        );
        records.push(record);
    }
    records
}

/// Runs the chaos workload matrix (same instances, faults armed), printing
/// one line per cell.
pub fn run_chaos_bench(options: &ServeBenchOptions) -> Vec<ChaosRecord> {
    let max_sessions = 2;
    let mut records = Vec::new();
    for (name, g, clients, queries_each) in serve_workloads(options.quick) {
        let text = edge_list_text(&g);
        let queries = (clients * queries_each) as u64;
        let mut best: Option<(f64, MetricsSnapshot)> = None;
        for _ in 0..options.repeats.max(1) {
            let run = run_chaos_fleet(&text, clients, queries_each, max_sessions);
            if best.as_ref().map_or(true, |(s, _)| run.0 < *s) {
                best = Some(run);
            }
        }
        let (seconds, metrics) = best.expect("at least one repeat");
        assert_eq!(
            metrics.sessions_started, queries,
            "{name}: admission lost sessions under faults"
        );
        let record = ChaosRecord {
            graph: name.to_string(),
            n: g.n(),
            m: g.m(),
            preset: ServeConfig::default().preset,
            clients,
            queries,
            max_sessions,
            seconds,
            cliques: metrics.cliques_emitted,
            sessions_started: metrics.sessions_started,
            sessions_degraded: metrics.sessions_degraded,
            connections_reaped: metrics.connections_reaped,
            panics_contained: metrics.panics_contained,
        };
        println!(
            "{:<14} chaos clients={} queries={:>3} {:>8.4}s {:>8.1} q/s  \
             degraded {}, reaped {}, panics contained {}",
            record.graph,
            record.clients,
            record.queries,
            record.seconds,
            record.queries_per_sec(),
            record.sessions_degraded,
            record.connections_reaped,
            record.panics_contained,
        );
        records.push(record);
    }
    records
}

/// Re-validates the whole trajectory file, returning how many records carry
/// each serve schema (`(serve, chaos)`) — the check the CI smoke job relies
/// on.
fn validate_trajectory(path: &Path) -> Result<(usize, usize), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("re-reading {}: {e}", path.display()))?;
    let parsed = parse(&text)?;
    let runs = parsed
        .as_array()
        .ok_or_else(|| format!("{} is not a JSON array", path.display()))?;
    let mut serve_runs = 0usize;
    let mut chaos_runs = 0usize;
    for run in runs {
        for key in ["schema", "variant", "graph", "preset", "seconds", "cliques"] {
            if run.get(key).is_none() {
                return Err(format!("run record missing key '{key}'"));
            }
        }
        let schema = run.get("schema").and_then(JsonValue::as_str);
        if schema == Some(SCHEMA) {
            serve_runs += 1;
            for key in [
                "clients",
                "queries",
                "max_sessions",
                "queries_per_sec",
                "sessions_started",
                "sessions_completed",
                "sessions_truncated",
                "sessions_rejected",
                "peak_sessions",
            ] {
                if run.get(key).is_none() {
                    return Err(format!("serve record missing key '{key}'"));
                }
            }
        } else if schema == Some(CHAOS_SCHEMA) {
            chaos_runs += 1;
            for key in [
                "clients",
                "queries",
                "max_sessions",
                "queries_per_sec",
                "sessions_started",
                "sessions_degraded",
                "connections_reaped",
                "panics_contained",
            ] {
                if run.get(key).is_none() {
                    return Err(format!("chaos record missing key '{key}'"));
                }
            }
        }
    }
    Ok((serve_runs, chaos_runs))
}

/// Appends every record to the trajectory file and re-validates it,
/// including the serve-specific counter fields. Returns the total number of
/// serve records in the file.
pub fn append_records(
    path: &Path,
    variant: &str,
    records: &[ServeRecord],
) -> Result<usize, String> {
    append_runs(path, records.iter().map(|r| r.to_json(variant)).collect())?;
    validate_trajectory(path).map(|(serve_runs, _)| serve_runs)
}

/// Appends every chaos record to the trajectory file and re-validates it.
/// Returns the total number of chaos records in the file.
pub fn append_chaos_records(
    path: &Path,
    variant: &str,
    records: &[ChaosRecord],
) -> Result<usize, String> {
    append_runs(path, records.iter().map(|r| r.to_json(variant)).collect())?;
    validate_trajectory(path).map(|(_, chaos_runs)| chaos_runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_measures_and_serialises() {
        let options = ServeBenchOptions {
            variant: "test".into(),
            quick: true,
            repeats: 1,
        };
        let records = run_serve_bench(&options);
        assert_eq!(records.len(), serve_workloads(true).len());
        for r in &records {
            assert_eq!(r.queries, (r.clients * 4) as u64);
            assert_eq!(r.sessions_started, r.queries);
            assert_eq!(
                r.sessions_completed + r.sessions_truncated,
                r.sessions_started,
                "{}: every queued session must finish",
                r.graph
            );
            assert!(r.sessions_truncated > 0, "{}: no truncated cells", r.graph);
            assert_eq!(
                r.sessions_rejected, 0,
                "{}: queueing never rejects",
                r.graph
            );
            assert!(r.cliques > 0, "{}: nothing streamed", r.graph);
            assert!(r.queries_per_sec() > 0.0);
            assert!(
                r.peak_sessions >= 1 && r.peak_sessions <= r.max_sessions as u64,
                "{}: peak {} outside [1, {}]",
                r.graph,
                r.peak_sessions,
                r.max_sessions
            );
            let json = r.to_json("test");
            assert_eq!(json.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
            assert!(json.get("queries_per_sec").is_some());
        }
    }

    #[test]
    fn quick_chaos_matrix_contains_every_fault() {
        let options = ServeBenchOptions {
            variant: "test".into(),
            quick: true,
            repeats: 1,
        };
        let records = run_chaos_bench(&options);
        assert_eq!(records.len(), serve_workloads(true).len());
        for r in &records {
            assert_eq!(r.queries, (r.clients * 4) as u64);
            assert_eq!(r.sessions_started, r.queries);
            assert!(
                r.panics_contained > 0,
                "{}: no injected panic was contained",
                r.graph
            );
            assert!(
                r.connections_reaped >= 1,
                "{}: the idler was never reaped",
                r.graph
            );
            // Degradation depends on session overlap, so it is not asserted
            // here — the serve_chaos suite pins it deterministically.
            assert!(r.cliques > 0, "{}: nothing streamed", r.graph);
            assert!(r.queries_per_sec() > 0.0);
            let json = r.to_json("test");
            assert_eq!(
                json.get("schema").and_then(JsonValue::as_str),
                Some(CHAOS_SCHEMA)
            );
            // Keys every appender's global check demands of every record.
            for key in ["preset", "seconds", "cliques", "panics_contained"] {
                assert!(json.get(key).is_some(), "{}: missing '{key}'", r.graph);
            }
        }
    }

    #[test]
    fn append_records_validates_serve_fields() {
        let dir = std::env::temp_dir().join("mce_bench_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_solver.json");
        let _ = std::fs::remove_file(&path);
        let record = ServeRecord {
            graph: "toy".into(),
            n: 5,
            m: 7,
            preset: "HBBMC++".into(),
            clients: 2,
            queries: 8,
            max_sessions: 2,
            seconds: 0.25,
            cliques: 20,
            sessions_started: 8,
            sessions_completed: 6,
            sessions_truncated: 2,
            sessions_rejected: 0,
            peak_sessions: 2,
        };
        assert!((record.queries_per_sec() - 32.0).abs() < 1e-12);
        let total = append_records(&path, "test", &[record]).unwrap();
        assert_eq!(total, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_chaos_records_validates_chaos_fields() {
        let dir = std::env::temp_dir().join("mce_bench_serve_chaos_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_solver.json");
        let _ = std::fs::remove_file(&path);
        let chaos = ChaosRecord {
            graph: "toy".into(),
            n: 5,
            m: 7,
            preset: "HBBMC++".into(),
            clients: 2,
            queries: 8,
            max_sessions: 2,
            seconds: 0.5,
            cliques: 14,
            sessions_started: 8,
            sessions_degraded: 3,
            connections_reaped: 1,
            panics_contained: 2,
        };
        assert!((chaos.queries_per_sec() - 16.0).abs() < 1e-12);
        let total = append_chaos_records(&path, "test", &[chaos]).unwrap();
        assert_eq!(total, 1);
        // A serve record appended to the same trajectory must still validate:
        // the chaos record carries every globally-required key.
        let serve = ServeRecord {
            graph: "toy".into(),
            n: 5,
            m: 7,
            preset: "HBBMC++".into(),
            clients: 2,
            queries: 8,
            max_sessions: 2,
            seconds: 0.25,
            cliques: 20,
            sessions_started: 8,
            sessions_completed: 8,
            sessions_truncated: 0,
            sessions_rejected: 0,
            peak_sessions: 2,
        };
        let total = append_records(&path, "test", &[serve]).unwrap();
        assert_eq!(total, 1);
        let _ = std::fs::remove_file(&path);
    }
}
