//! Named algorithm registry mapping the paper's algorithm names to solver
//! configurations.

use hbbmc::SolverConfig;

/// A named algorithm, exactly as it appears in the paper's tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Algorithm {
    /// The paper's name (e.g. `HBBMC++`, `RDegen`).
    pub name: &'static str,
    /// The solver configuration implementing it.
    pub config: SolverConfig,
}

/// Looks up an algorithm by its paper name.
pub fn algorithm(name: &str) -> Option<Algorithm> {
    SolverConfig::named_presets()
        .into_iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(n, config)| Algorithm { name: n, config })
}

/// The competitor set of Table II: `HBBMC++` against the four state-of-the-art
/// reduction-enhanced VBBMC baselines.
pub fn baseline_algorithms() -> Vec<Algorithm> {
    ["HBBMC++", "RRef", "RDegen", "RRcd", "RFac"]
        .iter()
        .map(|n| algorithm(n).expect("preset exists"))
        .collect()
}

/// The ablation / hybrid-variant set of Table III.
pub fn ablation_algorithms() -> Vec<Algorithm> {
    ["HBBMC++", "HBBMC+", "RDegen", "Ref++", "Rcd++", "Fac++"]
        .iter()
        .map(|n| algorithm(n).expect("preset exists"))
        .collect()
}

/// The edge-ordering comparison set of Table VI.
pub fn ordering_algorithms() -> Vec<Algorithm> {
    ["HBBMC++", "VBBMC-dgn", "HBBMC-dgn", "HBBMC-mdg"]
        .iter()
        .map(|n| algorithm(n).expect("preset exists"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(algorithm("hbbmc++").unwrap().name, "HBBMC++");
        assert!(algorithm("unknown").is_none());
    }

    #[test]
    fn table2_set_has_five_entries_led_by_hbbmc() {
        let algos = baseline_algorithms();
        assert_eq!(algos.len(), 5);
        assert_eq!(algos[0].name, "HBBMC++");
    }

    #[test]
    fn table3_set_has_six_entries() {
        assert_eq!(ablation_algorithms().len(), 6);
    }

    #[test]
    fn table6_set_has_four_entries() {
        assert_eq!(ordering_algorithms().len(), 4);
    }
}
