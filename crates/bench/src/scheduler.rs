//! The skewed-graph scheduler benchmark behind `cargo bench --bench
//! bench_scheduler` and `experiments scheduler`.
//!
//! Root-pulling schedulers are bounded below by the largest root subtree, so
//! this matrix measures exactly the workloads where that bound bites:
//!
//! * **planted-hub** instances (`mce_gen::planted_hub`) put the *entire*
//!   recursion tree under one root under natural-order vertex branching —
//!   the pulling schedulers degenerate to sequential execution while the
//!   splitting scheduler spreads the hub subtree over all workers;
//! * **Barabási–Albert** instances carry the realistic moderate skew of
//!   preferential-attachment hubs.
//!
//! Each cell runs both [`RootScheduler::Dynamic`] and
//! [`RootScheduler::Splitting`] at several thread counts and records
//! wall-clock seconds, the split/steal/busy-time counters and
//! `max_worker_share` — the largest share of the run's recursive calls
//! executed by one worker, whose reciprocal bounds the achievable parallel
//! speedup machine-independently (wall clock alone is meaningless on a
//! host with fewer cores than threads; see EXPERIMENTS.md). One flat JSON
//! object per cell is appended to the `BENCH_solver.json` trajectory
//! (schema [`SCHEMA`], side by side with the hot-path records); splitting
//! cells also record their wall-clock speedup over the matching dynamic
//! cell.

use std::path::Path;

use hbbmc::{par_count_with_worker_stats, RootScheduler, SolverConfig};
use mce_gen::{barabasi_albert, planted_hub};
use mce_graph::Graph;

use crate::json::{append_runs, parse, JsonValue};

/// Schema tag stamped on every scheduler-benchmark record.
pub const SCHEMA: &str = "hbbmc-bench-scheduler/v1";

/// Options of one scheduler-benchmark invocation.
#[derive(Clone, Debug)]
pub struct SchedulerBenchOptions {
    /// Label identifying the code state being measured.
    pub variant: String,
    /// Use the tiny graph matrix (CI smoke runs).
    pub quick: bool,
    /// Timed repetitions per cell; the best (minimum) time is recorded.
    pub repeats: usize,
}

impl Default for SchedulerBenchOptions {
    fn default() -> Self {
        SchedulerBenchOptions {
            variant: "unnamed".into(),
            quick: false,
            repeats: 2,
        }
    }
}

/// One measured cell of the scheduler matrix.
#[derive(Clone, Debug)]
pub struct SchedulerRecord {
    /// Graph name.
    pub graph: String,
    /// Vertex count of the instance.
    pub n: usize,
    /// Edge count of the instance.
    pub m: usize,
    /// Preset name (paper algorithm name).
    pub preset: String,
    /// Scheduler policy name (`dynamic` / `splitting`).
    pub scheduler: String,
    /// Worker threads used.
    pub threads: usize,
    /// Best wall-clock seconds over the repetitions.
    pub seconds: f64,
    /// Number of maximal cliques found.
    pub cliques: u64,
    /// Sub-branch tasks donated (splitting scheduler only).
    pub splits: u64,
    /// Donated tasks stolen and executed (equals `splits` after a run).
    pub steals: u64,
    /// Summed worker busy time divided by `seconds × threads` — the worker
    /// utilisation this cell achieved (1.0 = perfectly balanced).
    pub busy_fraction: f64,
    /// Largest share of the run's recursive calls executed by any single
    /// worker. This is the machine-independent load-balance gauge: `1 /
    /// max_worker_share` bounds the achievable parallel speedup, so a skewed
    /// graph under a pulling scheduler reports ≈ 1.0 (one worker owns the
    /// giant root) while the splitting scheduler approaches `1 / threads`.
    pub max_worker_share: f64,
    /// Wall-clock speedup over the matching dynamic cell (same graph,
    /// preset and thread count); `None` for the dynamic cells themselves.
    pub speedup_vs_dynamic: Option<f64>,
}

impl SchedulerRecord {
    /// The flat JSON object appended to the trajectory file.
    pub fn to_json(&self, variant: &str) -> JsonValue {
        let mut pairs = vec![
            ("schema", JsonValue::Str(SCHEMA.into())),
            ("variant", JsonValue::Str(variant.into())),
            ("graph", JsonValue::Str(self.graph.clone())),
            ("n", JsonValue::Num(self.n as f64)),
            ("m", JsonValue::Num(self.m as f64)),
            ("preset", JsonValue::Str(self.preset.clone())),
            ("scheduler", JsonValue::Str(self.scheduler.clone())),
            ("threads", JsonValue::Num(self.threads as f64)),
            ("seconds", JsonValue::Num(self.seconds)),
            ("cliques", JsonValue::Num(self.cliques as f64)),
            ("splits", JsonValue::Num(self.splits as f64)),
            ("steals", JsonValue::Num(self.steals as f64)),
            ("busy_fraction", JsonValue::Num(self.busy_fraction)),
            ("max_worker_share", JsonValue::Num(self.max_worker_share)),
        ];
        if let Some(speedup) = self.speedup_vs_dynamic {
            pairs.push(("speedup_vs_dynamic", JsonValue::Num(speedup)));
        }
        JsonValue::obj(pairs)
    }
}

/// The skewed benchmark instances: `(name, graph, preset name, config)`.
/// Presets are chosen per graph to keep the skewed recursion alive (graph
/// reduction or early termination would trivialise the planted hub).
pub fn scheduler_graphs(quick: bool) -> Vec<(&'static str, Graph, &'static str, SolverConfig)> {
    if quick {
        vec![
            (
                "hub_n21",
                planted_hub(21, 4),
                "BK_Pivot",
                SolverConfig::bk_pivot(),
            ),
            (
                "ba_n300_k8",
                barabasi_albert(300, 8, 7),
                "HBBMC+",
                SolverConfig::hbbmc_plus(),
            ),
        ]
    } else {
        vec![
            (
                "hub_n41",
                planted_hub(41, 4),
                "BK_Pivot",
                SolverConfig::bk_pivot(),
            ),
            (
                "hub_n37",
                planted_hub(37, 4),
                "HBBMC+",
                SolverConfig::hbbmc_plus(),
            ),
            (
                "ba_n3000_k12",
                barabasi_albert(3_000, 12, 7),
                "HBBMC+",
                SolverConfig::hbbmc_plus(),
            ),
        ]
    }
}

/// Thread counts of the matrix.
pub fn scheduler_threads(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 4]
    } else {
        vec![1, 4, 8]
    }
}

fn measure_cell(
    name: &str,
    g: &Graph,
    preset: &str,
    config: &SolverConfig,
    scheduler: RootScheduler,
    threads: usize,
    repeats: usize,
) -> SchedulerRecord {
    let mut config = *config;
    config.scheduler = scheduler;
    let mut best = f64::INFINITY;
    let mut cliques = 0u64;
    let mut splits = 0u64;
    let mut steals = 0u64;
    let mut busy_fraction = 0.0;
    let mut max_worker_share = 0.0;
    for _ in 0..repeats.max(1) {
        let (count, stats, per_worker) = par_count_with_worker_stats(g, &config, threads);
        cliques = count;
        let secs = stats.elapsed.as_secs_f64();
        if secs < best {
            best = secs;
            splits = stats.splits;
            steals = stats.steals;
            busy_fraction = if secs > 0.0 {
                stats.busy_time.as_secs_f64() / (secs * threads as f64)
            } else {
                0.0
            };
            let total_calls: u64 = per_worker.iter().map(|w| w.recursive_calls).sum();
            let max_calls = per_worker
                .iter()
                .map(|w| w.recursive_calls)
                .max()
                .unwrap_or(0);
            max_worker_share = if total_calls > 0 {
                max_calls as f64 / total_calls as f64
            } else {
                0.0
            };
        }
    }
    SchedulerRecord {
        graph: name.to_string(),
        n: g.n(),
        m: g.m(),
        preset: preset.to_string(),
        scheduler: match scheduler {
            RootScheduler::Dynamic => "dynamic".into(),
            RootScheduler::Static => "static".into(),
            RootScheduler::Splitting => "splitting".into(),
        },
        threads,
        seconds: best,
        cliques,
        splits,
        steals,
        busy_fraction,
        max_worker_share,
        speedup_vs_dynamic: None,
    }
}

/// Runs the full scheduler matrix, printing one line per cell and the
/// dynamic→splitting speedup per `(graph, threads)` pair.
pub fn run_scheduler_bench(options: &SchedulerBenchOptions) -> Vec<SchedulerRecord> {
    let mut records = Vec::new();
    for (name, g, preset, config) in scheduler_graphs(options.quick) {
        for &threads in &scheduler_threads(options.quick) {
            let dynamic = measure_cell(
                name,
                &g,
                preset,
                &config,
                RootScheduler::Dynamic,
                threads,
                options.repeats,
            );
            let mut splitting = measure_cell(
                name,
                &g,
                preset,
                &config,
                RootScheduler::Splitting,
                threads,
                options.repeats,
            );
            assert_eq!(
                dynamic.cliques, splitting.cliques,
                "{name}: schedulers disagree on the clique count"
            );
            let speedup = if splitting.seconds > 0.0 {
                dynamic.seconds / splitting.seconds
            } else {
                1.0
            };
            splitting.speedup_vs_dynamic = Some(speedup);
            for r in [&dynamic, &splitting] {
                println!(
                    "{:<14} {:<8} {:<9} threads={} {:>9.4}s {:>10} cliques  splits={:<5} \
                     busy={:.2} max_share={:.2}{}",
                    r.graph,
                    r.preset,
                    r.scheduler,
                    r.threads,
                    r.seconds,
                    r.cliques,
                    r.splits,
                    r.busy_fraction,
                    r.max_worker_share,
                    match r.speedup_vs_dynamic {
                        Some(s) => format!("  speedup={s:.2}x"),
                        None => String::new(),
                    }
                );
            }
            records.push(dynamic);
            records.push(splitting);
        }
    }
    records
}

/// Appends every record to the trajectory file and re-validates it,
/// including the scheduler-specific fields (the check the CI smoke job
/// relies on).
pub fn append_records(
    path: &Path,
    variant: &str,
    records: &[SchedulerRecord],
) -> Result<usize, String> {
    append_runs(path, records.iter().map(|r| r.to_json(variant)).collect())?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("re-reading {}: {e}", path.display()))?;
    let parsed = parse(&text)?;
    let runs = parsed
        .as_array()
        .ok_or_else(|| format!("{} is not a JSON array", path.display()))?;
    let mut scheduler_runs = 0usize;
    for run in runs {
        for key in ["schema", "variant", "graph", "preset", "seconds", "cliques"] {
            if run.get(key).is_none() {
                return Err(format!("run record missing key '{key}'"));
            }
        }
        if run.get("schema").and_then(JsonValue::as_str) == Some(SCHEMA) {
            scheduler_runs += 1;
            for key in [
                "scheduler",
                "threads",
                "splits",
                "steals",
                "busy_fraction",
                "max_worker_share",
            ] {
                if run.get(key).is_none() {
                    return Err(format!("scheduler record missing key '{key}'"));
                }
            }
        }
    }
    Ok(scheduler_runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_measures_and_serialises() {
        let options = SchedulerBenchOptions {
            variant: "test".into(),
            quick: true,
            repeats: 1,
        };
        let records = run_scheduler_bench(&options);
        assert_eq!(
            records.len(),
            scheduler_graphs(true).len() * scheduler_threads(true).len() * 2
        );
        for r in &records {
            assert!(r.cliques > 0, "{} found no cliques", r.graph);
            assert_eq!(r.splits, r.steals, "{}: unexecuted donations", r.graph);
            let json = r.to_json("test");
            assert_eq!(json.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
            assert!(json.get("splits").is_some());
        }
        // Splitting cells carry the speedup field, dynamic cells do not.
        assert!(records
            .iter()
            .all(|r| (r.scheduler == "splitting") == r.speedup_vs_dynamic.is_some()));
    }

    #[test]
    fn hub_instances_actually_split_at_four_threads() {
        // The planted hub puts everything under one root: with starving
        // workers the splitting scheduler *must* donate and spread the calls,
        // otherwise the benchmark measures nothing. A larger instance than
        // the smoke matrix is used so the run comfortably outlives the
        // donation threshold even on slow machines.
        let g = planted_hub(33, 4);
        let config = SolverConfig::bk_pivot();
        let dynamic = measure_cell(
            "hub_n33",
            &g,
            "BK_Pivot",
            &config,
            RootScheduler::Dynamic,
            4,
            1,
        );
        let splitting = measure_cell(
            "hub_n33",
            &g,
            "BK_Pivot",
            &config,
            RootScheduler::Splitting,
            4,
            1,
        );
        assert_eq!(dynamic.cliques, splitting.cliques);
        assert!(splitting.splits > 0, "no donations: {splitting:?}");
        // Dynamic: one worker owns the hub root (≈ every call); splitting
        // spreads it.
        assert!(dynamic.max_worker_share > 0.95, "{dynamic:?}");
        assert!(splitting.max_worker_share < 0.75, "{splitting:?}");
    }

    #[test]
    fn append_records_validates_scheduler_fields() {
        let dir = std::env::temp_dir().join("mce_bench_scheduler_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_solver.json");
        let _ = std::fs::remove_file(&path);
        let record = SchedulerRecord {
            graph: "toy".into(),
            n: 5,
            m: 7,
            preset: "BK_Pivot".into(),
            scheduler: "splitting".into(),
            threads: 4,
            seconds: 0.01,
            cliques: 3,
            splits: 2,
            steals: 2,
            busy_fraction: 0.9,
            max_worker_share: 0.3,
            speedup_vs_dynamic: Some(1.7),
        };
        let total = append_records(&path, "test", &[record]).unwrap();
        assert_eq!(total, 1);
        let _ = std::fs::remove_file(&path);
    }
}
