//! The CSR memory-wall benchmark behind `cargo bench --bench bench_csr`.
//!
//! Measures the resource profile that motivated the hybrid global layer: for
//! each `er-scale`-shaped instance (Erdős–Rényi with `m = 10n`) it records
//!
//! * the **actual CSR footprint** of the loaded graph (`8(n+1) + 4·2m` bytes,
//!   measured from the live arrays), next to the **analytic dense footprint**
//!   (`n · ⌈n/64⌉ · 8` bytes) an `AdjMatrix` global layer would need — the
//!   `O(n²/64)` wall this layout removes;
//! * load time from the text edge list versus the `.mcg` binary container
//!   (the binary path skips tokenising, relabelling and re-sorting — it is a
//!   checksummed `O(n + m)` copy);
//! * end-to-end enumeration time, clique count and branch counters through
//!   the CSR global layer, plus the process peak RSS (`VmHWM`) where the
//!   platform exposes it.
//!
//! Records are appended to the workspace `BENCH_solver.json` trajectory under
//! the `hybrid-csr` variant, alongside the hot-path/scheduler/query/serve
//! schemas.

use std::path::Path;
use std::time::Instant;

use hbbmc::{par_count_with_worker_stats, SolverConfig};
use mce_gen::erdos_renyi;
use mce_graph::io::{read_graph_bytes, write_graph, GraphFormat};
use mce_graph::Graph;

use crate::json::{append_runs, parse, JsonValue};

/// Schema tag stamped on every CSR run record.
pub const SCHEMA: &str = "hbbmc-bench-csr/v1";

/// Options of one `bench_csr` invocation.
#[derive(Clone, Debug)]
pub struct CsrBenchOptions {
    /// Label identifying the code state being measured (e.g. `hybrid-csr`).
    pub variant: String,
    /// Worker threads for the enumeration leg.
    pub threads: usize,
    /// Use the tiny instance (CI smoke runs).
    pub quick: bool,
    /// Timed repetitions per cell; the best (minimum) time is recorded.
    pub repeats: usize,
}

impl Default for CsrBenchOptions {
    fn default() -> Self {
        CsrBenchOptions {
            variant: "hybrid-csr".into(),
            threads: 1,
            quick: false,
            repeats: 1,
        }
    }
}

/// One measured instance.
#[derive(Clone, Debug)]
pub struct CsrRecord {
    /// Instance name.
    pub graph: String,
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Solver preset used for the enumeration leg.
    pub preset: String,
    /// Worker threads used.
    pub threads: usize,
    /// Measured bytes of the live CSR arrays (`8(n+1) + 4·2m`).
    pub csr_bytes: u64,
    /// Analytic bytes of a dense `n × n` bitmap global layer
    /// (`n · ⌈n/64⌉ · 8`).
    pub dense_bytes: u64,
    /// On-disk size of the `.mcg` encoding.
    pub mcg_file_bytes: u64,
    /// Best seconds to parse the text edge list back into a [`Graph`].
    pub text_load_seconds: f64,
    /// Best seconds to load the same graph from its `.mcg` bytes.
    pub mcg_load_seconds: f64,
    /// Best end-to-end enumeration seconds through the CSR global layer.
    pub seconds: f64,
    /// Number of maximal cliques found.
    pub cliques: u64,
    /// Root branches planned (vertex- or edge-oriented).
    pub initial_branches: u64,
    /// Recursive branching calls.
    pub recursive_calls: u64,
    /// Process peak RSS in bytes (`VmHWM` on Linux), if readable.
    pub peak_rss_bytes: Option<u64>,
}

impl CsrRecord {
    /// How many times smaller the CSR global layer is than the dense bitmap.
    pub fn dense_over_csr(&self) -> f64 {
        if self.csr_bytes > 0 {
            self.dense_bytes as f64 / self.csr_bytes as f64
        } else {
            0.0
        }
    }

    /// The flat JSON object appended to the trajectory file.
    pub fn to_json(&self, variant: &str) -> JsonValue {
        let mut fields = vec![
            ("schema", JsonValue::Str(SCHEMA.into())),
            ("variant", JsonValue::Str(variant.into())),
            ("graph", JsonValue::Str(self.graph.clone())),
            ("n", JsonValue::Num(self.n as f64)),
            ("m", JsonValue::Num(self.m as f64)),
            ("preset", JsonValue::Str(self.preset.clone())),
            ("threads", JsonValue::Num(self.threads as f64)),
            ("csr_bytes", JsonValue::Num(self.csr_bytes as f64)),
            ("dense_bytes", JsonValue::Num(self.dense_bytes as f64)),
            ("dense_over_csr", JsonValue::Num(self.dense_over_csr())),
            ("mcg_file_bytes", JsonValue::Num(self.mcg_file_bytes as f64)),
            ("text_load_seconds", JsonValue::Num(self.text_load_seconds)),
            ("mcg_load_seconds", JsonValue::Num(self.mcg_load_seconds)),
            ("seconds", JsonValue::Num(self.seconds)),
            ("cliques", JsonValue::Num(self.cliques as f64)),
            (
                "initial_branches",
                JsonValue::Num(self.initial_branches as f64),
            ),
            (
                "recursive_calls",
                JsonValue::Num(self.recursive_calls as f64),
            ),
        ];
        if let Some(rss) = self.peak_rss_bytes {
            fields.push(("peak_rss_bytes", JsonValue::Num(rss as f64)));
        }
        JsonValue::obj(fields)
    }
}

/// The benchmark instances: `er-scale`-shaped graphs (`m = 10n`).
///
/// Quick mode uses a small instance so CI smoke stays fast; the full matrix
/// walks up to the 1M-vertex / 10M-edge acceptance shape, whose dense bitmap
/// would need ~125 GB while the CSR arrays stay under 100 MB.
pub fn csr_instances(quick: bool) -> Vec<(&'static str, usize)> {
    if quick {
        vec![("er_scale_n5k", 5_000)]
    } else {
        vec![("er_scale_n100k", 100_000), ("er_scale_n1m", 1_000_000)]
    }
}

/// Live bytes of the graph's CSR arrays.
pub fn csr_bytes(g: &Graph) -> u64 {
    (std::mem::size_of_val(g.csr_offsets()) + std::mem::size_of_val(g.csr_adjacency())) as u64
}

/// Analytic bytes of a dense `n × n` adjacency bitmap with 64-bit rows.
pub fn dense_bytes(n: usize) -> u64 {
    (n as u64) * (n as u64).div_ceil(64) * 8
}

/// Reads the process peak resident-set size (`VmHWM`) in bytes, if the
/// platform exposes `/proc/self/status`.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn best_of<T>(repeats: usize, mut run: impl FnMut() -> (f64, T)) -> (f64, T) {
    let (mut best, mut value) = run();
    for _ in 1..repeats.max(1) {
        let (secs, v) = run();
        if secs < best {
            best = secs;
            value = v;
        }
    }
    (best, value)
}

/// Measures one instance end to end.
pub fn measure_instance(name: &str, n: usize, options: &CsrBenchOptions) -> CsrRecord {
    let seed = 7;
    let g = erdos_renyi(n, 10 * n, seed);

    // Serialise once to both formats, then time loading each back.
    let mut text = Vec::new();
    write_graph(&g, &mut text, GraphFormat::EdgeList).expect("edge-list encode");
    let mut mcg = Vec::new();
    write_graph(&g, &mut mcg, GraphFormat::Mcg).expect("mcg encode");

    let (text_load_seconds, from_text) = best_of(options.repeats, || {
        let start = Instant::now();
        let loaded = read_graph_bytes(&text, GraphFormat::EdgeList).expect("edge-list load");
        (start.elapsed().as_secs_f64(), loaded)
    });
    let (mcg_load_seconds, from_mcg) = best_of(options.repeats, || {
        let start = Instant::now();
        let loaded = read_graph_bytes(&mcg, GraphFormat::Mcg).expect("mcg load");
        (start.elapsed().as_secs_f64(), loaded)
    });
    // The text round trip drops isolated vertices (edge lists cannot name
    // them), so compare edge counts; the binary round trip must be exact.
    assert_eq!(from_text.m(), g.m(), "{name}: text round trip lost edges");
    assert_eq!(from_mcg, g, "{name}: mcg round trip differs");
    drop(from_text);
    drop(from_mcg);

    let preset = "HBBMC++";
    let config = SolverConfig::hbbmc_pp();
    let (seconds, (cliques, stats)) = best_of(options.repeats, || {
        let start = Instant::now();
        let (count, merged, _) = par_count_with_worker_stats(&g, &config, options.threads);
        (start.elapsed().as_secs_f64(), (count, merged))
    });

    CsrRecord {
        graph: name.to_string(),
        n: g.n(),
        m: g.m(),
        preset: preset.to_string(),
        threads: options.threads,
        csr_bytes: csr_bytes(&g),
        dense_bytes: dense_bytes(g.n()),
        mcg_file_bytes: mcg.len() as u64,
        text_load_seconds,
        mcg_load_seconds,
        seconds,
        cliques,
        initial_branches: stats.initial_branches,
        recursive_calls: stats.recursive_calls,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Runs the instance matrix, printing one line per cell.
pub fn run_csr_bench(options: &CsrBenchOptions) -> Vec<CsrRecord> {
    let mut records = Vec::new();
    for (name, n) in csr_instances(options.quick) {
        let r = measure_instance(name, n, options);
        println!(
            "{:<16} n={:<9} m={:<10} csr={:>12}B dense={:>16}B ({:>8.0}x) \
             load text={:.3}s mcg={:.3}s enumerate={:.3}s cliques={} rss={}",
            r.graph,
            r.n,
            r.m,
            r.csr_bytes,
            r.dense_bytes,
            r.dense_over_csr(),
            r.text_load_seconds,
            r.mcg_load_seconds,
            r.seconds,
            r.cliques,
            r.peak_rss_bytes
                .map(|b| format!("{}MB", b / (1024 * 1024)))
                .unwrap_or_else(|| "n/a".into()),
        );
        records.push(r);
    }
    records
}

/// Appends every record to the trajectory file and re-validates it,
/// including the CSR-specific fields (the check the CI smoke job relies on).
pub fn append_records(path: &Path, variant: &str, records: &[CsrRecord]) -> Result<usize, String> {
    append_runs(path, records.iter().map(|r| r.to_json(variant)).collect())?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("re-reading {}: {e}", path.display()))?;
    let parsed = parse(&text)?;
    let runs = parsed
        .as_array()
        .ok_or_else(|| format!("{} is not a JSON array", path.display()))?;
    let mut csr_runs = 0usize;
    for run in runs {
        for key in ["schema", "variant", "graph", "preset", "seconds", "cliques"] {
            if run.get(key).is_none() {
                return Err(format!("run record missing key '{key}'"));
            }
        }
        if run.get("schema").and_then(JsonValue::as_str) == Some(SCHEMA) {
            csr_runs += 1;
            for key in [
                "csr_bytes",
                "dense_bytes",
                "dense_over_csr",
                "mcg_file_bytes",
                "text_load_seconds",
                "mcg_load_seconds",
                "initial_branches",
                "recursive_calls",
            ] {
                if run.get(key).is_none() {
                    return Err(format!("csr record missing key '{key}'"));
                }
            }
        }
    }
    Ok(csr_runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_instance_measures_and_serialises() {
        let options = CsrBenchOptions {
            variant: "test".into(),
            threads: 1,
            quick: true,
            repeats: 1,
        };
        let records = run_csr_bench(&options);
        assert_eq!(records.len(), csr_instances(true).len());
        let r = &records[0];
        assert_eq!(r.m, 10 * r.n);
        assert!(r.cliques > 0);
        assert!(r.csr_bytes < r.dense_bytes, "CSR must beat dense at m=10n");
        assert!(r.mcg_file_bytes > 0);
        let json = r.to_json("test");
        assert_eq!(json.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
        assert!(json.get("csr_bytes").is_some());
    }

    #[test]
    fn byte_accounting_matches_formulas() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        // 5 offsets × 8 bytes + 6 directed entries × 4 bytes.
        assert_eq!(csr_bytes(&g), 5 * 8 + 6 * 4);
        assert_eq!(dense_bytes(64), 64 * 8);
        assert_eq!(dense_bytes(65), 65 * 2 * 8);
        assert_eq!(dense_bytes(0), 0);
    }

    #[test]
    fn append_records_validates_csr_fields() {
        let dir = std::env::temp_dir().join("mce_bench_csr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_csr.json");
        let _ = std::fs::remove_file(&path);
        let record = CsrRecord {
            graph: "toy".into(),
            n: 40,
            m: 400,
            preset: "HBBMC++".into(),
            threads: 1,
            csr_bytes: 328 + 3200,
            dense_bytes: 320,
            mcg_file_bytes: 4000,
            text_load_seconds: 0.001,
            mcg_load_seconds: 0.0005,
            seconds: 0.01,
            cliques: 5,
            initial_branches: 40,
            recursive_calls: 100,
            peak_rss_bytes: None,
        };
        let total = append_records(&path, "test", &[record]).unwrap();
        assert_eq!(total, 1);
        let _ = std::fs::remove_file(&path);
    }
}
