//! Measurement helpers: run one algorithm on one graph and collect the numbers
//! the paper reports (seconds, `#Calls`, ET ratio, clique count).

use std::time::Instant;

use hbbmc::{CountReporter, EnumerationStats, Solver, SolverConfig};
use mce_graph::Graph;

/// One measured run of an algorithm on a graph.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Wall-clock time of the complete run (ordering + reduction + enumeration).
    pub seconds: f64,
    /// Number of maximal cliques reported.
    pub cliques: u64,
    /// Full statistics of the run.
    pub stats: EnumerationStats,
}

impl Measurement {
    /// Human-readable `#Calls` figure formatted like the paper (K/M/B suffixes).
    pub fn calls_human(&self) -> String {
        format_count(self.stats.recursive_calls)
    }
}

/// Runs `config` on `g` once and collects a [`Measurement`].
pub fn measure(g: &Graph, config: &SolverConfig) -> Measurement {
    let solver = Solver::new(g, *config).expect("invalid solver configuration");
    let mut reporter = CountReporter::new();
    let start = Instant::now();
    let stats = solver.run(&mut reporter);
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        seconds,
        cliques: reporter.count,
        stats,
    }
}

/// Formats a large count with the K / M / B suffixes used by the paper.
pub fn format_count(value: u64) -> String {
    const K: f64 = 1_000.0;
    let v = value as f64;
    if v >= K * K * K {
        format!("{:.2}B", v / (K * K * K))
    } else if v >= K * K {
        format!("{:.2}M", v / (K * K))
    } else if v >= K {
        format!("{:.0}K", v / K)
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_gen::moon_moser;

    #[test]
    fn measure_counts_cliques_and_time() {
        let g = moon_moser(4);
        let m = measure(&g, &SolverConfig::hbbmc_pp());
        assert_eq!(m.cliques, 81);
        assert_eq!(m.stats.maximal_cliques, 81);
        assert!(m.seconds >= 0.0);
        assert!(m.seconds < 10.0);
    }

    #[test]
    fn different_algorithms_agree_on_counts() {
        let g = mce_gen::erdos_renyi(300, 2_500, 7);
        let reference = measure(&g, &SolverConfig::r_degen()).cliques;
        for cfg in [
            SolverConfig::hbbmc_pp(),
            SolverConfig::hbbmc_plus(),
            SolverConfig::r_rcd(),
            SolverConfig::r_fac(),
            SolverConfig::r_ref(),
        ] {
            assert_eq!(measure(&g, &cfg).cliques, reference);
        }
    }

    #[test]
    fn count_formatting_matches_paper_style() {
        assert_eq!(format_count(537), "537");
        assert_eq!(format_count(365_000), "365K");
        assert_eq!(format_count(2_150_000), "2.15M");
        assert_eq!(format_count(1_540_000_000), "1.54B");
    }

    #[test]
    fn calls_human_is_populated() {
        let g = moon_moser(3);
        let m = measure(&g, &SolverConfig::r_degen());
        assert!(!m.calls_human().is_empty());
    }
}
