//! Minimal JSON support for the benchmark trajectory file.
//!
//! The workspace is built offline (no `serde`), and the only JSON the harness
//! needs is the flat run-record array stored in `BENCH_solver.json`. This
//! module provides exactly that: a small value model ([`JsonValue`]), a
//! writer with string escaping, a recursive-descent parser (used both to
//! append to an existing trajectory and to *validate* emitter output in CI),
//! and the [`append_run`] helper the `bench_hotpath` target and the
//! `experiments` binary share.
//!
//! The trajectory file is a single JSON array of flat objects; appending
//! parses the existing array, pushes the new record and rewrites the file, so
//! the file is valid JSON after every write.

use std::fmt::Write as _;
use std::path::Path;

/// A parsed or to-be-written JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Serialises the value with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (level + 1)), " ".repeat(w * level)),
            None => ("", String::new(), String::new()),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::Str(s) => render_string(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.render_into(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    render_string(out, k);
                    out.push_str(if indent.is_some() { ": " } else { ":" });
                    v.render_into(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document. Rejects trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("invalid number '{text}' at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Appends `run` to the JSON array stored at `path`, creating the file when it
/// does not exist. The file is rewritten in full so it is valid JSON after
/// every append; a malformed existing file is reported as an error rather
/// than silently overwritten.
pub fn append_run(path: &Path, run: JsonValue) -> Result<(), String> {
    append_runs(path, vec![run])
}

/// Batch variant of [`append_run`]: one read, one parse, one write for any
/// number of new records.
pub fn append_runs(path: &Path, new_runs: Vec<JsonValue>) -> Result<(), String> {
    let mut runs = match std::fs::read_to_string(path) {
        Ok(text) if !text.trim().is_empty() => match parse(&text)? {
            JsonValue::Arr(items) => items,
            other => {
                return Err(format!(
                    "{} exists but is not a JSON array (found {other:?})",
                    path.display()
                ))
            }
        },
        _ => Vec::new(),
    };
    runs.extend(new_runs);
    let rendered = JsonValue::Arr(runs).render_pretty();
    std::fs::write(path, rendered).map_err(|e| format!("writing {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalar_values() {
        for text in ["null", "true", "false", "42", "-3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn roundtrip_nested_structure() {
        let v = JsonValue::obj(vec![
            ("graph", JsonValue::Str("er_n200".into())),
            ("seconds", JsonValue::Num(0.125)),
            ("cliques", JsonValue::Num(1234.0)),
            (
                "tags",
                JsonValue::Arr(vec![JsonValue::Str("a\"b\\c\n".into()), JsonValue::Null]),
            ),
        ]);
        let compact = v.render();
        let pretty = v.render_pretty();
        assert_eq!(parse(&compact).unwrap(), v);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn object_lookup_helpers() {
        let v = parse("{\"a\": 1.5, \"b\": \"x\", \"c\": [2]}").unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(JsonValue::as_array).map(|a| a.len()),
            Some(1)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn append_creates_then_extends_array() {
        let dir = std::env::temp_dir().join("mce_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trajectory.json");
        let _ = std::fs::remove_file(&path);

        append_run(&path, JsonValue::obj(vec![("run", JsonValue::Num(1.0))])).unwrap();
        append_run(&path, JsonValue::obj(vec![("run", JsonValue::Num(2.0))])).unwrap();

        let parsed = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let runs = parsed.as_array().expect("array");
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("run").and_then(JsonValue::as_f64), Some(2.0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_refuses_non_array_files() {
        let dir = std::env::temp_dir().join("mce_bench_json_test_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not_array.json");
        std::fs::write(&path, "{\"not\": \"an array\"}").unwrap();
        assert!(append_run(&path, JsonValue::Null).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
