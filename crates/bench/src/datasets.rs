//! Surrogate datasets standing in for the paper's Table I graphs.
//!
//! The original evaluation uses 16 real-world graphs from
//! networkrepository.com (54K–3M vertices, up to 106M edges). They cannot be
//! bundled here and exceed the intended laptop scale, so each one is replaced
//! by a synthetic surrogate that preserves the *regime* relevant to the
//! paper's claims rather than the absolute size:
//!
//! * the edge density ρ = m/n is matched approximately,
//! * social / collaboration graphs (clique-rich, large δ−τ gap) become
//!   planted-community graphs,
//! * web graphs and meshes become Barabási–Albert or Erdős–Rényi graphs with
//!   comparable density,
//! * the surrogate sizes are a few thousand vertices so the full table
//!   (5–6 algorithms × 16 datasets) runs in minutes.
//!
//! Each surrogate reports its own measured |V|, |E|, δ, τ and ρ via
//! `experiments table1`, so the paper's condition `δ ≥ max{3, τ + 3lnρ/ln3}`
//! can be checked per graph exactly as in the original Table I.

use mce_gen::{barabasi_albert, erdos_renyi, planted_communities, PlantedConfig};
use mce_graph::Graph;

/// The generator family behind a surrogate dataset.
#[derive(Clone, Debug, PartialEq)]
pub enum DatasetSpec {
    /// Erdős–Rényi `G(n, m)` with `m = n · rho`.
    ErdosRenyi {
        /// Number of vertices.
        n: usize,
        /// Edge density ρ = m/n.
        rho: f64,
    },
    /// Barabási–Albert with attachment parameter `k` (ρ ≈ k).
    BarabasiAlbert {
        /// Number of vertices.
        n: usize,
        /// Edges added per new vertex.
        k: usize,
    },
    /// Overlapping planted communities over a sparse background.
    Planted(PlantedConfig),
}

/// A named surrogate dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    /// Short name used in the paper's tables (e.g. `NA`, `FB`).
    pub short: &'static str,
    /// Full dataset name in the paper (e.g. `nasasrb`).
    pub paper_name: &'static str,
    /// Category reported in Table I.
    pub category: &'static str,
    /// Generator specification of the surrogate.
    pub spec: DatasetSpec,
    /// RNG seed (fixed for reproducibility).
    pub seed: u64,
}

impl Dataset {
    /// Instantiates the surrogate graph.
    pub fn build(&self) -> Graph {
        build_scaled(self, 1.0)
    }

    /// Instantiates a scaled-down version of the surrogate (`scale ≤ 1`
    /// shrinks the vertex count); used by the Criterion benches to keep
    /// per-iteration times manageable.
    pub fn build_scaled(&self, scale: f64) -> Graph {
        build_scaled(self, scale)
    }
}

fn build_scaled(dataset: &Dataset, scale: f64) -> Graph {
    let scale = scale.clamp(0.01, 1.0);
    match &dataset.spec {
        DatasetSpec::ErdosRenyi { n, rho } => {
            let n = ((*n as f64) * scale).round().max(16.0) as usize;
            // Keep the *relative* density sane when the surrogate is scaled
            // down (ρ is defined against the full-size n): an ER graph with a
            // quarter of all possible edges is already far denser than any of
            // the paper's graphs and explodes the clique count.
            let possible = n * n.saturating_sub(1) / 2;
            let m = ((n as f64 * rho).round() as usize).min(possible / 4);
            erdos_renyi(n, m, dataset.seed)
        }
        DatasetSpec::BarabasiAlbert { n, k } => {
            let n = ((*n as f64) * scale).round().max(16.0) as usize;
            barabasi_albert(n, *k, dataset.seed)
        }
        DatasetSpec::Planted(config) => {
            let mut config = config.clone();
            config.n = ((config.n as f64) * scale).round().max(16.0) as usize;
            config.communities = ((config.communities as f64) * scale).round().max(1.0) as usize;
            config.background_edges = ((config.background_edges as f64) * scale).round() as usize;
            config.seed = dataset.seed;
            planted_communities(&config)
        }
    }
}

fn planted(
    n: usize,
    communities: usize,
    min_size: usize,
    max_size: usize,
    intra: f64,
    background: usize,
) -> DatasetSpec {
    DatasetSpec::Planted(PlantedConfig {
        n,
        communities,
        min_size,
        max_size,
        intra_probability: intra,
        background_edges: background,
        seed: 0, // overridden by Dataset::seed at build time
    })
}

/// The 16 surrogate datasets mirroring the paper's Table I, in the same order.
pub fn all_datasets() -> Vec<Dataset> {
    vec![
        Dataset {
            short: "NA",
            paper_name: "nasasrb",
            category: "Social Network",
            spec: DatasetSpec::ErdosRenyi {
                n: 2_200,
                rho: 24.0,
            },
            seed: 101,
        },
        Dataset {
            short: "FB",
            paper_name: "fbwosn",
            category: "Social Network",
            spec: planted(3_600, 650, 5, 14, 0.92, 18_000),
            seed: 102,
        },
        Dataset {
            short: "WE",
            paper_name: "websk",
            category: "Web Graph",
            spec: DatasetSpec::BarabasiAlbert { n: 5_000, k: 3 },
            seed: 103,
        },
        Dataset {
            short: "WK",
            paper_name: "wikitrust",
            category: "Web Graph",
            spec: planted(4_200, 450, 4, 11, 0.9, 14_000),
            seed: 104,
        },
        Dataset {
            short: "SH",
            paper_name: "shipsec5",
            category: "Social Network",
            spec: DatasetSpec::ErdosRenyi {
                n: 3_200,
                rho: 12.0,
            },
            seed: 105,
        },
        Dataset {
            short: "ST",
            paper_name: "stanford",
            category: "Social Network",
            spec: DatasetSpec::BarabasiAlbert { n: 5_000, k: 7 },
            seed: 106,
        },
        Dataset {
            short: "DB",
            paper_name: "dblp",
            category: "Collaboration",
            spec: planted(5_000, 1_100, 3, 8, 1.0, 6_000),
            seed: 107,
        },
        Dataset {
            short: "DE",
            paper_name: "dielfilter",
            category: "Other",
            spec: DatasetSpec::ErdosRenyi {
                n: 2_000,
                rho: 38.0,
            },
            seed: 108,
        },
        Dataset {
            short: "DG",
            paper_name: "digg",
            category: "Social Network",
            spec: planted(6_000, 750, 6, 18, 0.93, 26_000),
            seed: 109,
        },
        Dataset {
            short: "YO",
            paper_name: "youtube",
            category: "Social Network",
            spec: DatasetSpec::BarabasiAlbert { n: 8_000, k: 3 },
            seed: 110,
        },
        Dataset {
            short: "PO",
            paper_name: "pokec",
            category: "Social Network",
            spec: planted(6_000, 600, 5, 13, 0.9, 40_000),
            seed: 111,
        },
        Dataset {
            short: "SK",
            paper_name: "skitter",
            category: "Web Graph",
            spec: DatasetSpec::BarabasiAlbert { n: 7_000, k: 6 },
            seed: 112,
        },
        Dataset {
            short: "CN",
            paper_name: "wikicn",
            category: "Web Graph",
            spec: planted(7_000, 650, 4, 12, 0.92, 22_000),
            seed: 113,
        },
        Dataset {
            short: "BA",
            paper_name: "baidu",
            category: "Web Graph",
            spec: DatasetSpec::BarabasiAlbert { n: 6_500, k: 8 },
            seed: 114,
        },
        Dataset {
            short: "OR",
            paper_name: "orkut",
            category: "Social Network",
            spec: planted(4_500, 850, 8, 20, 0.9, 36_000),
            seed: 115,
        },
        Dataset {
            short: "SO",
            paper_name: "socfba",
            category: "Social Network",
            spec: planted(6_500, 800, 5, 12, 0.92, 24_000),
            seed: 116,
        },
    ]
}

/// Looks up a dataset by its short name (case-insensitive).
pub fn dataset_by_name(short: &str) -> Option<Dataset> {
    all_datasets()
        .into_iter()
        .find(|d| d.short.eq_ignore_ascii_case(short))
}

/// A small subset of datasets used by the Criterion benches (kept small so a
/// full `cargo bench` pass stays in the minutes range).
pub fn bench_datasets() -> Vec<Dataset> {
    ["NA", "FB", "DB", "WE"]
        .iter()
        .filter_map(|s| dataset_by_name(s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_datasets_matching_table1_order() {
        let d = all_datasets();
        assert_eq!(d.len(), 16);
        assert_eq!(d[0].short, "NA");
        assert_eq!(d[15].short, "SO");
        let names: Vec<&str> = d.iter().map(|x| x.short).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 16, "short names are unique");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(dataset_by_name("db").unwrap().paper_name, "dblp");
        assert!(dataset_by_name("nope").is_none());
    }

    #[test]
    fn scaled_build_shrinks_graph() {
        let d = dataset_by_name("WE").unwrap();
        let full = d.build_scaled(0.2);
        let small = d.build_scaled(0.05);
        assert!(small.n() < full.n());
        assert!(small.n() >= 16);
    }

    #[test]
    fn builds_are_deterministic() {
        let d = dataset_by_name("NA").unwrap();
        let a = d.build_scaled(0.1);
        let b = d.build_scaled(0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn bench_subset_is_nonempty_and_small() {
        let b = bench_datasets();
        assert!(!b.is_empty());
        assert!(b.len() <= 6);
    }

    #[test]
    fn surrogates_have_positive_density() {
        // Use a small scale to keep the test fast; density is scale-invariant enough.
        for d in all_datasets() {
            let g = d.build_scaled(0.08);
            assert!(g.m() > 0, "{} surrogate has edges", d.short);
            assert!(g.edge_density() > 0.5, "{} surrogate density", d.short);
        }
    }
}
