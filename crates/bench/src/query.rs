//! The anchored-query benchmark behind `cargo bench --bench bench_query` and
//! `experiments query`.
//!
//! Anchored queries ("every maximal clique containing this vertex set") are
//! the serving primitive the unified query engine opens up: instead of
//! enumerating the whole graph and filtering, the engine builds the anchor's
//! common-neighbourhood subgraph once and recurses only inside it. This
//! matrix quantifies what that saves, *counter-first*: the recording host
//! exposes a single CPU, so the headline columns are machine-independent
//! work metrics — `recursive_calls` of the anchored run vs. the full
//! enumeration, the derived `calls_saved` ratio, and
//! `anchored_roots_skipped` (root branches the anchored query never opened)
//! — with wall-clock seconds recorded alongside for completeness.
//!
//! One flat JSON object per anchored cell is appended to the
//! `BENCH_solver.json` trajectory (schema [`SCHEMA`]), carrying both the
//! anchored and the matching full-enumeration numbers so each cell is
//! self-contained.

use std::path::Path;

use hbbmc::{run_query, CountReporter, Query, QuerySpec, QueryValue, SolverConfig};
use mce_gen::{barabasi_albert, planted_communities, PlantedConfig};
use mce_graph::{Graph, VertexId};

use crate::json::{append_runs, parse, JsonValue};

/// Schema tag stamped on every query-benchmark record.
pub const SCHEMA: &str = "hbbmc-bench-query/v1";

/// Options of one query-benchmark invocation.
#[derive(Clone, Debug)]
pub struct QueryBenchOptions {
    /// Label identifying the code state being measured.
    pub variant: String,
    /// Use the tiny graph matrix (CI smoke runs).
    pub quick: bool,
    /// Timed repetitions per cell; the best (minimum) time is recorded.
    pub repeats: usize,
}

impl Default for QueryBenchOptions {
    fn default() -> Self {
        QueryBenchOptions {
            variant: "unnamed".into(),
            quick: false,
            repeats: 2,
        }
    }
}

/// One measured anchored-query cell (with its full-enumeration baseline).
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// Graph name.
    pub graph: String,
    /// Vertex count of the instance.
    pub n: usize,
    /// Edge count of the instance.
    pub m: usize,
    /// Preset name (paper algorithm name).
    pub preset: String,
    /// The anchor vertices, comma-joined (e.g. `"17"` or `"17,42"`).
    pub anchor: String,
    /// Number of anchor vertices.
    pub anchor_size: usize,
    /// Best wall-clock seconds of the anchored query.
    pub seconds: f64,
    /// Maximal cliques containing the anchor.
    pub cliques: u64,
    /// Recursive branch evaluations of the anchored query.
    pub recursive_calls: u64,
    /// Root branches the anchored query never had to open.
    pub anchored_roots_skipped: u64,
    /// Best wall-clock seconds of the full enumeration baseline.
    pub full_seconds: f64,
    /// Total maximal cliques of the graph.
    pub full_cliques: u64,
    /// Recursive branch evaluations of the full enumeration.
    pub full_recursive_calls: u64,
}

impl QueryRecord {
    /// Branch evaluations the anchored query avoided.
    pub fn calls_saved(&self) -> u64 {
        self.full_recursive_calls
            .saturating_sub(self.recursive_calls)
    }

    /// Fraction of the full enumeration's branch evaluations avoided.
    pub fn calls_saved_ratio(&self) -> f64 {
        if self.full_recursive_calls == 0 {
            0.0
        } else {
            self.calls_saved() as f64 / self.full_recursive_calls as f64
        }
    }

    /// The flat JSON object appended to the trajectory file.
    pub fn to_json(&self, variant: &str) -> JsonValue {
        JsonValue::obj(vec![
            ("schema", JsonValue::Str(SCHEMA.into())),
            ("variant", JsonValue::Str(variant.into())),
            ("graph", JsonValue::Str(self.graph.clone())),
            ("n", JsonValue::Num(self.n as f64)),
            ("m", JsonValue::Num(self.m as f64)),
            ("preset", JsonValue::Str(self.preset.clone())),
            ("anchor", JsonValue::Str(self.anchor.clone())),
            ("anchor_size", JsonValue::Num(self.anchor_size as f64)),
            ("seconds", JsonValue::Num(self.seconds)),
            ("cliques", JsonValue::Num(self.cliques as f64)),
            (
                "recursive_calls",
                JsonValue::Num(self.recursive_calls as f64),
            ),
            (
                "anchored_roots_skipped",
                JsonValue::Num(self.anchored_roots_skipped as f64),
            ),
            ("full_seconds", JsonValue::Num(self.full_seconds)),
            ("full_cliques", JsonValue::Num(self.full_cliques as f64)),
            (
                "full_recursive_calls",
                JsonValue::Num(self.full_recursive_calls as f64),
            ),
            ("calls_saved", JsonValue::Num(self.calls_saved() as f64)),
            (
                "calls_saved_ratio",
                JsonValue::Num(self.calls_saved_ratio()),
            ),
        ])
    }
}

/// The benchmark instances: `(name, graph)`. Community-structured graphs are
/// the anchored workload's home turf (a vertex's cliques live in its own
/// community), with a preferential-attachment instance for hub anchors.
pub fn query_graphs(quick: bool) -> Vec<(&'static str, Graph)> {
    let planted = |n: usize, communities: usize, seed: u64| {
        planted_communities(&PlantedConfig {
            n,
            communities,
            min_size: 4,
            max_size: 9,
            intra_probability: 1.0,
            background_edges: 2 * n,
            seed,
        })
    };
    if quick {
        vec![
            ("planted_n60", planted(60, 5, 5)),
            ("ba_n200_k6", barabasi_albert(200, 6, 7)),
        ]
    } else {
        vec![
            ("planted_n1000", planted(1_000, 40, 5)),
            ("planted_n4000", planted(4_000, 150, 11)),
            ("ba_n3000_k12", barabasi_albert(3_000, 12, 7)),
        ]
    }
}

/// Anchors for a graph: the highest-degree vertex alone, and that vertex
/// with its highest-degree neighbour (an anchored *edge*).
pub fn pick_anchors(g: &Graph) -> Vec<Vec<VertexId>> {
    let hub = g
        .vertices()
        .max_by_key(|&v| g.degree(v))
        .expect("benchmark graphs are non-empty");
    let mut anchors = vec![vec![hub]];
    if let Some(&mate) = g.neighbors(hub).iter().max_by_key(|&&u| g.degree(u)) {
        anchors.push(vec![hub, mate]);
    }
    anchors
}

fn run_anchored_cell(
    g: &Graph,
    anchor: &[VertexId],
    config: &SolverConfig,
    repeats: usize,
) -> (f64, u64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut cliques = 0u64;
    let mut calls = 0u64;
    let mut skipped = 0u64;
    for _ in 0..repeats.max(1) {
        let mut counter = CountReporter::new();
        let result = run_query(
            g,
            Query::new(QuerySpec::Anchored {
                vertices: anchor.to_vec(),
            })
            .with_config(*config),
            &mut counter,
        )
        .expect("valid anchored query");
        cliques = counter.count;
        calls = result.stats.recursive_calls;
        skipped = result.stats.anchored_roots_skipped;
        best = best.min(result.stats.elapsed.as_secs_f64());
    }
    (best, cliques, calls, skipped)
}

fn run_full_cell(g: &Graph, config: &SolverConfig, repeats: usize) -> (f64, u64, u64) {
    let mut best = f64::INFINITY;
    let mut cliques = 0u64;
    let mut calls = 0u64;
    for _ in 0..repeats.max(1) {
        let mut sink = CountReporter::new();
        let result = run_query(
            g,
            Query::new(QuerySpec::Count).with_config(*config),
            &mut sink,
        )
        .expect("valid count query");
        let QueryValue::Count(count) = result.value else {
            unreachable!("Count yields a Count value")
        };
        cliques = count;
        calls = result.stats.recursive_calls;
        best = best.min(result.stats.elapsed.as_secs_f64());
    }
    (best, cliques, calls)
}

/// Runs the anchored-vs-full matrix, printing one line per anchored cell.
pub fn run_query_bench(options: &QueryBenchOptions) -> Vec<QueryRecord> {
    let preset = ("HBBMC++", SolverConfig::hbbmc_pp());
    let mut records = Vec::new();
    for (name, g) in query_graphs(options.quick) {
        let (full_seconds, full_cliques, full_calls) =
            run_full_cell(&g, &preset.1, options.repeats);
        for anchor in pick_anchors(&g) {
            let (seconds, cliques, calls, skipped) =
                run_anchored_cell(&g, &anchor, &preset.1, options.repeats);
            assert!(
                cliques <= full_cliques,
                "{name}: anchored result exceeds the full enumeration"
            );
            let record = QueryRecord {
                graph: name.to_string(),
                n: g.n(),
                m: g.m(),
                preset: preset.0.to_string(),
                anchor: anchor
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                anchor_size: anchor.len(),
                seconds,
                cliques,
                recursive_calls: calls,
                anchored_roots_skipped: skipped,
                full_seconds,
                full_cliques,
                full_recursive_calls: full_calls,
            };
            println!(
                "{:<14} anchor=[{}] {:>9.4}s {:>8} cliques  calls {:>9} vs {:>9} full \
                 (saved {:.1}%), roots skipped {}",
                record.graph,
                record.anchor,
                record.seconds,
                record.cliques,
                record.recursive_calls,
                record.full_recursive_calls,
                100.0 * record.calls_saved_ratio(),
                record.anchored_roots_skipped,
            );
            records.push(record);
        }
    }
    records
}

/// Appends every record to the trajectory file and re-validates it,
/// including the query-specific fields (the check the CI smoke job relies
/// on).
pub fn append_records(
    path: &Path,
    variant: &str,
    records: &[QueryRecord],
) -> Result<usize, String> {
    append_runs(path, records.iter().map(|r| r.to_json(variant)).collect())?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("re-reading {}: {e}", path.display()))?;
    let parsed = parse(&text)?;
    let runs = parsed
        .as_array()
        .ok_or_else(|| format!("{} is not a JSON array", path.display()))?;
    let mut query_runs = 0usize;
    for run in runs {
        for key in ["schema", "variant", "graph", "preset", "seconds", "cliques"] {
            if run.get(key).is_none() {
                return Err(format!("run record missing key '{key}'"));
            }
        }
        if run.get("schema").and_then(JsonValue::as_str) == Some(SCHEMA) {
            query_runs += 1;
            for key in [
                "anchor",
                "anchor_size",
                "recursive_calls",
                "anchored_roots_skipped",
                "full_recursive_calls",
                "calls_saved",
                "calls_saved_ratio",
            ] {
                if run.get(key).is_none() {
                    return Err(format!("query record missing key '{key}'"));
                }
            }
        }
    }
    Ok(query_runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hbbmc::{enumerate_collect, CollectReporter};

    #[test]
    fn quick_matrix_measures_and_serialises() {
        let options = QueryBenchOptions {
            variant: "test".into(),
            quick: true,
            repeats: 1,
        };
        let records = run_query_bench(&options);
        assert_eq!(records.len(), query_graphs(true).len() * 2);
        for r in &records {
            assert!(r.full_cliques > 0, "{}: empty full enumeration", r.graph);
            assert!(
                r.recursive_calls <= r.full_recursive_calls,
                "{}: anchoring must not add work",
                r.graph
            );
            assert!(r.anchored_roots_skipped > 0, "{}: nothing skipped", r.graph);
            let json = r.to_json("test");
            assert_eq!(json.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
            assert!(json.get("calls_saved").is_some());
        }
    }

    #[test]
    fn anchored_cells_agree_with_enumerate_then_filter() {
        // The benchmark's own correctness gate, on the quick matrix.
        for (name, g) in query_graphs(true) {
            let (all, _) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
            for anchor in pick_anchors(&g) {
                let expected = all
                    .iter()
                    .filter(|c| anchor.iter().all(|v| c.contains(v)))
                    .count() as u64;
                let mut collector = CollectReporter::new();
                run_query(
                    &g,
                    Query::new(QuerySpec::Anchored {
                        vertices: anchor.clone(),
                    }),
                    &mut collector,
                )
                .unwrap();
                assert_eq!(
                    collector.cliques.len() as u64,
                    expected,
                    "{name} anchor {anchor:?}"
                );
            }
        }
    }

    #[test]
    fn append_records_validates_query_fields() {
        let dir = std::env::temp_dir().join("mce_bench_query_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_solver.json");
        let _ = std::fs::remove_file(&path);
        let record = QueryRecord {
            graph: "toy".into(),
            n: 5,
            m: 7,
            preset: "HBBMC++".into(),
            anchor: "3".into(),
            anchor_size: 1,
            seconds: 0.01,
            cliques: 3,
            recursive_calls: 10,
            anchored_roots_skipped: 2,
            full_seconds: 0.05,
            full_cliques: 9,
            full_recursive_calls: 40,
        };
        assert_eq!(record.calls_saved(), 30);
        assert!((record.calls_saved_ratio() - 0.75).abs() < 1e-12);
        let total = append_records(&path, "test", &[record]).unwrap();
        assert_eq!(total, 1);
        let _ = std::fs::remove_file(&path);
    }
}
