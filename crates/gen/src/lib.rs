//! # mce-gen — synthetic graph generators for MCE workloads
//!
//! The paper evaluates on real-world graphs (Table I) and on synthetic graphs
//! drawn from the **Erdős–Rényi** and **Barabási–Albert** models (Figure 5 /
//! Appendix D). This crate implements both models plus a collection of
//! structured generators used for testing and for the surrogate datasets of
//! the benchmark harness:
//!
//! * [`erdos_renyi`] — `G(n, m)` uniform random graphs,
//! * [`barabasi_albert`] — preferential-attachment graphs,
//! * [`moon_moser`](moon_moser()) — the complete multipartite graphs `K_{3,3,…,3}` attaining
//!   the `3^{n/3}` maximal-clique bound,
//! * [`structured`] — paths, cycles, stars, complete bipartite and Turán graphs,
//! * [`plex`] — random t-plexes (dense graphs whose complement is a bounded
//!   degree structure),
//! * [`planted`] — overlapping planted communities, a clique-rich model that
//!   mimics the social-network datasets of Table I at laptop scale,
//! * [`hub`] — planted-hub graphs whose entire recursion tree hangs off one
//!   root branch, the stress case for the parallel schedulers.
//!
//! All generators are deterministic given a seed (`rand::rngs::StdRng`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ba;
pub mod er;
pub mod hub;
pub mod moon_moser;
pub mod planted;
pub mod plex;
pub mod presets;
pub mod structured;

pub use ba::barabasi_albert;
pub use er::{erdos_renyi, erdos_renyi_gnp};
pub use hub::{planted_hub, planted_hub_clique_count};
pub use moon_moser::moon_moser;
pub use planted::{planted_communities, PlantedConfig};
pub use plex::{random_t_plex, t_plex_from_complement};
pub use presets::{gen_preset_by_name, GenPreset, GEN_PRESETS};
pub use structured::{complete_bipartite, cycle_graph, path_graph, star_graph, turan_graph};
