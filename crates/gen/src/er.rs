//! Erdős–Rényi random graphs.

use mce_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generates a `G(n, m)` Erdős–Rényi graph: `m` distinct edges chosen
/// uniformly at random among all vertex pairs.
///
/// This matches the paper's synthetic-data setup ("the model first generates
/// n vertices and then randomly chooses m edges between pairs of vertices").
/// If `m` exceeds the number of possible edges the complete graph is returned.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(possible);
    if n == 0 {
        return Graph::empty(0);
    }
    // Dense request: generate the complement instead for efficiency.
    if m * 2 > possible {
        let keep_out = sample_pairs(n, possible - m, seed);
        let edges = (0..n as VertexId)
            .flat_map(|u| ((u + 1)..n as VertexId).map(move |v| (u, v)))
            .filter(|e| !keep_out.contains(e));
        return Graph::from_edges(n, edges).expect("generated endpoints are in range");
    }
    let edges = sample_pairs(n, m, seed);
    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

/// Generates a `G(n, p)` Erdős–Rényi graph where every pair is an edge
/// independently with probability `p`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

/// Samples `count` distinct unordered pairs over `0..n` uniformly at random.
fn sample_pairs(n: usize, count: usize, seed: u64) -> HashSet<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(count);
    while chosen.len() < count {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let pair = if u < v { (u, v) } else { (v, u) };
        chosen.insert(pair);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exactly_m_edges() {
        let g = erdos_renyi(100, 500, 7);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 500);
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = erdos_renyi(50, 200, 42);
        let b = erdos_renyi(50, 200, 42);
        let c = erdos_renyi(50, 200, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = erdos_renyi(6, 1000, 1);
        assert_eq!(g.m(), 15);
    }

    #[test]
    fn gnm_dense_request_uses_complement_path() {
        let g = erdos_renyi(20, 180, 3); // 190 possible, 180 requested (> half)
        assert_eq!(g.m(), 180);
    }

    #[test]
    fn gnm_zero_vertices_or_edges() {
        assert_eq!(erdos_renyi(0, 10, 1).n(), 0);
        let g = erdos_renyi(10, 0, 1);
        assert_eq!(g.m(), 0);
        assert_eq!(g.n(), 10);
    }

    #[test]
    fn gnp_extremes() {
        let empty = erdos_renyi_gnp(12, 0.0, 5);
        assert_eq!(empty.m(), 0);
        let full = erdos_renyi_gnp(12, 1.0, 5);
        assert_eq!(full.m(), 66);
    }

    #[test]
    fn gnp_mid_probability_reasonable_density() {
        let g = erdos_renyi_gnp(60, 0.5, 11);
        let possible = 60 * 59 / 2;
        let frac = g.m() as f64 / possible as f64;
        assert!(frac > 0.4 && frac < 0.6, "observed edge fraction {frac}");
    }
}
