//! Overlapping planted-community graphs.
//!
//! The real social-network / web datasets of Table I are dominated by many
//! overlapping dense communities on top of a sparse background — exactly the
//! regime where the paper's hybrid branching and early termination pay off.
//! This generator reproduces that regime at laptop scale: it plants a number
//! of (near-)cliques with controlled size and overlap and mixes in a sparse
//! Erdős–Rényi background.

use mce_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration of the planted-community generator.
#[derive(Clone, Debug, PartialEq)]
pub struct PlantedConfig {
    /// Number of vertices.
    pub n: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Minimum community size (inclusive).
    pub min_size: usize,
    /// Maximum community size (inclusive).
    pub max_size: usize,
    /// Probability that an intra-community pair is connected (1.0 = clique).
    pub intra_probability: f64,
    /// Number of uniformly random background edges added on top.
    pub background_edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            n: 1_000,
            communities: 120,
            min_size: 4,
            max_size: 12,
            intra_probability: 0.95,
            background_edges: 2_000,
            seed: 1,
        }
    }
}

/// Generates an overlapping planted-community graph according to `config`.
pub fn planted_communities(config: &PlantedConfig) -> Graph {
    let n = config.n;
    if n == 0 {
        return Graph::empty(0);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut edges: HashSet<(VertexId, VertexId)> = HashSet::new();
    let push = |edges: &mut HashSet<(VertexId, VertexId)>, u: VertexId, v: VertexId| {
        if u != v {
            edges.insert(if u < v { (u, v) } else { (v, u) });
        }
    };

    let min_size = config.min_size.max(2).min(n);
    let max_size = config.max_size.max(min_size).min(n);
    for _ in 0..config.communities {
        let size = rng.gen_range(min_size..=max_size);
        let mut members: Vec<VertexId> = Vec::with_capacity(size);
        while members.len() < size {
            let v = rng.gen_range(0..n) as VertexId;
            if !members.contains(&v) {
                members.push(v);
            }
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.gen_bool(config.intra_probability.clamp(0.0, 1.0)) {
                    push(&mut edges, members[i], members[j]);
                }
            }
        }
    }

    let possible = n * (n - 1) / 2;
    let mut background = 0usize;
    let mut guard = 0usize;
    while background < config.background_edges
        && edges.len() < possible
        && guard < 20 * config.background_edges + 1000
    {
        guard += 1;
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let pair = if u < v { (u, v) } else { (v, u) };
        if edges.insert(pair) {
            background += 1;
        }
    }

    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_graph::degeneracy::degeneracy;

    #[test]
    fn default_config_produces_clique_rich_graph() {
        let g = planted_communities(&PlantedConfig::default());
        assert_eq!(g.n(), 1_000);
        assert!(g.m() > 2_000);
        // Communities of size up to 12 force a non-trivial degeneracy.
        assert!(degeneracy(&g) >= 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = planted_communities(&PlantedConfig {
            seed: 7,
            ..Default::default()
        });
        let b = planted_communities(&PlantedConfig {
            seed: 7,
            ..Default::default()
        });
        let c = planted_communities(&PlantedConfig {
            seed: 8,
            ..Default::default()
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_vertices() {
        let g = planted_communities(&PlantedConfig {
            n: 0,
            ..Default::default()
        });
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn no_background_no_communities_is_empty() {
        let cfg = PlantedConfig {
            n: 50,
            communities: 0,
            background_edges: 0,
            ..Default::default()
        };
        let g = planted_communities(&cfg);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn pure_cliques_when_intra_probability_one() {
        let cfg = PlantedConfig {
            n: 30,
            communities: 1,
            min_size: 6,
            max_size: 6,
            intra_probability: 1.0,
            background_edges: 0,
            seed: 3,
        };
        let g = planted_communities(&cfg);
        assert_eq!(g.m(), 15);
        assert_eq!(degeneracy(&g), 5);
    }

    #[test]
    fn background_edges_respected_on_sparse_graph() {
        let cfg = PlantedConfig {
            n: 200,
            communities: 0,
            background_edges: 300,
            ..Default::default()
        };
        let g = planted_communities(&cfg);
        assert_eq!(g.m(), 300);
    }
}
