//! Barabási–Albert preferential-attachment graphs.

use mce_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a Barabási–Albert graph on `n` vertices where every new vertex
/// attaches to `k` existing vertices chosen with probability proportional to
/// their degree.
///
/// The paper's synthetic experiments use this model with edge density
/// ρ = m / n ≈ k, i.e. call `barabasi_albert(n, rho, seed)` to mirror a
/// "ρ = 20" configuration. The process starts from a `k`-clique seed.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Graph {
    if n == 0 {
        return Graph::empty(0);
    }
    let k = k.max(1).min(n.saturating_sub(1).max(1));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    // Repeated-endpoint list: each vertex appears once per incident edge, so
    // sampling uniformly from it realises preferential attachment.
    let mut endpoint_pool: Vec<VertexId> = Vec::new();

    let seed_size = (k + 1).min(n);
    for u in 0..seed_size as VertexId {
        for v in (u + 1)..seed_size as VertexId {
            edges.push((u, v));
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }

    for new in seed_size..n {
        let new = new as VertexId;
        let mut targets: Vec<VertexId> = Vec::with_capacity(k);
        let mut guard = 0usize;
        while targets.len() < k && guard < 50 * k + 100 {
            guard += 1;
            let t = if endpoint_pool.is_empty() {
                rng.gen_range(0..new)
            } else {
                endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
            };
            if t != new && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((new, t));
            endpoint_pool.push(new);
            endpoint_pool.push(t);
        }
    }

    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_edge_count() {
        let n = 200;
        let k = 5;
        let g = barabasi_albert(n, k, 9);
        // seed clique has C(k+1, 2) edges; each later vertex adds k edges.
        let expected = (k + 1) * k / 2 + (n - k - 1) * k;
        assert_eq!(g.n(), n);
        assert_eq!(g.m(), expected);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(barabasi_albert(80, 4, 1), barabasi_albert(80, 4, 1));
        assert_ne!(barabasi_albert(80, 4, 1), barabasi_albert(80, 4, 2));
    }

    #[test]
    fn graph_is_connected_for_positive_k() {
        let g = barabasi_albert(120, 3, 5);
        // BFS from vertex 0 reaches everything.
        let mut seen = vec![false; g.n()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(400, 3, 13);
        let max = g.max_degree();
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(
            max as f64 > 3.0 * avg,
            "hubs should emerge: max={max}, avg={avg}"
        );
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(barabasi_albert(0, 3, 1).n(), 0);
        let g1 = barabasi_albert(1, 3, 1);
        assert_eq!(g1.n(), 1);
        assert_eq!(g1.m(), 0);
        let g2 = barabasi_albert(2, 5, 1);
        assert_eq!(g2.n(), 2);
        assert_eq!(g2.m(), 1);
    }
}
