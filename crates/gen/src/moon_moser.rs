//! Moon–Moser graphs: the worst case for maximal clique enumeration.

use mce_graph::{Graph, VertexId};

/// The Moon–Moser graph on `3k` vertices: the complete `k`-partite graph
/// `K_{3,3,…,3}` with parts of size 3.
///
/// It has exactly `3^k` maximal cliques (one vertex from each part), which is
/// the maximum possible for a graph on `3k` vertices and the source of the
/// `3^{n/3}` terms in every worst-case bound of the paper.
pub fn moon_moser(k: usize) -> Graph {
    let n = 3 * k;
    let mut edges = Vec::new();
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            if u / 3 != v / 3 {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

/// The number of maximal cliques of `moon_moser(k)`, i.e. `3^k`.
pub fn moon_moser_clique_count(k: usize) -> u64 {
    3u64.pow(k as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_graph::degeneracy::degeneracy;

    #[test]
    fn sizes() {
        let g = moon_moser(3);
        assert_eq!(g.n(), 9);
        // complete 3-partite with parts of 3: m = C(9,2) - 3*C(3,2) = 36 - 9 = 27
        assert_eq!(g.m(), 27);
    }

    #[test]
    fn zero_parts_is_empty() {
        let g = moon_moser(0);
        assert_eq!(g.n(), 0);
        assert_eq!(moon_moser_clique_count(0), 1);
    }

    #[test]
    fn vertices_in_same_part_are_non_adjacent() {
        let g = moon_moser(4);
        for p in 0..4u32 {
            let base = 3 * p;
            assert!(!g.has_edge(base, base + 1));
            assert!(!g.has_edge(base, base + 2));
            assert!(!g.has_edge(base + 1, base + 2));
        }
    }

    #[test]
    fn transversals_are_cliques() {
        let g = moon_moser(3);
        assert!(g.is_clique(&[0, 3, 6]));
        assert!(g.is_clique(&[1, 4, 8]));
        assert!(g.is_clique(&[2, 5, 7]));
        assert!(!g.is_clique(&[0, 1, 6]));
    }

    #[test]
    fn degeneracy_is_n_minus_three() {
        for k in 2..5 {
            let g = moon_moser(k);
            assert_eq!(degeneracy(&g), 3 * k - 3);
        }
    }

    #[test]
    fn clique_count_formula() {
        assert_eq!(moon_moser_clique_count(1), 3);
        assert_eq!(moon_moser_clique_count(4), 81);
    }
}
