//! Deterministic structured graphs used in tests, examples and benchmarks.

use mce_graph::{Graph, VertexId};

/// The path graph `P_n` (n-1 edges).
pub fn path_graph(n: usize) -> Graph {
    let edges = (0..n.saturating_sub(1)).map(|u| (u as VertexId, u as VertexId + 1));
    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

/// The cycle graph `C_n` (requires `n >= 3` to contain a cycle; smaller `n`
/// degenerates to a path / single edge / empty graph).
pub fn cycle_graph(n: usize) -> Graph {
    if n < 3 {
        return path_graph(n);
    }
    let edges = (0..n).map(|u| (u as VertexId, ((u + 1) % n) as VertexId));
    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

/// The star graph `K_{1,n-1}`: vertex 0 connected to all others.
pub fn star_graph(n: usize) -> Graph {
    let edges = (1..n).map(|v| (0 as VertexId, v as VertexId));
    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

/// The complete bipartite graph `K_{a,b}` (left part `0..a`, right part `a..a+b`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let n = a + b;
    let edges = (0..a).flat_map(|u| (a..n).map(move |v| (u as VertexId, v as VertexId)));
    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

/// The Turán graph `T(n, r)`: complete r-partite graph on `n` vertices with
/// parts as equal as possible. `T(3k, k)` is the Moon–Moser graph.
pub fn turan_graph(n: usize, r: usize) -> Graph {
    if r == 0 {
        return Graph::empty(n);
    }
    let part_of: Vec<usize> = (0..n).map(|v| v % r).collect();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if part_of[u] != part_of[v] {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_counts() {
        let g = path_graph(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 5);
        assert_eq!(path_graph(0).n(), 0);
        assert_eq!(path_graph(1).m(), 0);
    }

    #[test]
    fn cycle_counts_and_degrees() {
        let g = cycle_graph(7);
        assert_eq!(g.m(), 7);
        assert!((0..7).all(|v| g.degree(v as VertexId) == 2));
        // Degenerate cases fall back to paths.
        assert_eq!(cycle_graph(2).m(), 1);
        assert_eq!(cycle_graph(1).m(), 0);
    }

    #[test]
    fn star_counts() {
        let g = star_graph(10);
        assert_eq!(g.m(), 9);
        assert_eq!(g.degree(0), 9);
        assert!((1..10).all(|v| g.degree(v as VertexId) == 1));
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn turan_equals_moon_moser_for_equal_parts() {
        let t = turan_graph(9, 3);
        let mm = crate::moon_moser::moon_moser(3);
        assert_eq!(t.n(), mm.n());
        assert_eq!(t.m(), mm.m());
    }

    #[test]
    fn turan_zero_parts_is_empty() {
        let g = turan_graph(5, 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn turan_one_part_is_edgeless() {
        let g = turan_graph(5, 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn turan_n_parts_is_complete() {
        let g = turan_graph(5, 5);
        assert_eq!(g.m(), 10);
    }
}
