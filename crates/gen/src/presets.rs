//! Named generator presets: a string → generator registry for drivers.
//!
//! Every generator family of this crate is reachable through a flat
//! `(name, n, seed)` interface so binaries (the `mce gen` subcommand, future
//! harnesses) can expose "write me a graph of roughly n vertices from model X"
//! without hard-coding each generator's parameter shape. Parameters other
//! than the size are fixed to representative defaults; callers needing full
//! control use the underlying functions directly.

use mce_graph::Graph;

use crate::ba::barabasi_albert;
use crate::er::erdos_renyi;
use crate::hub::planted_hub;
use crate::moon_moser::moon_moser;
use crate::planted::{planted_communities, PlantedConfig};
use crate::plex::random_t_plex;
use crate::structured::{complete_bipartite, cycle_graph, path_graph, star_graph, turan_graph};

/// A named graph generator with a uniform `(n, seed)` interface.
pub struct GenPreset {
    /// Stable lookup name (lowercase, hyphenated).
    pub name: &'static str,
    /// One-line human description shown by `mce gen --list`.
    pub description: &'static str,
    build: fn(usize, u64) -> Graph,
}

impl GenPreset {
    /// Builds a graph of roughly `n` vertices from `seed`. Deterministic:
    /// identical `(n, seed)` always yields an identical graph.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        (self.build)(n, seed)
    }
}

fn build_er_sparse(n: usize, seed: u64) -> Graph {
    erdos_renyi(n, 4 * n, seed)
}

fn build_er_scale(n: usize, seed: u64) -> Graph {
    // m = 10n: the memory-wall acceptance shape (1M vertices / 10M edges at
    // --n 1000000). A dense n×n bitmap of that graph would need ~125 GB;
    // the CSR layer holds it in 8(n+1) + 8m bytes ≈ 88 MB.
    erdos_renyi(n, 10 * n, seed)
}

fn build_er_dense(n: usize, seed: u64) -> Graph {
    let possible = n * n.saturating_sub(1) / 2;
    erdos_renyi(n, (16 * n).min(possible / 4), seed)
}

fn build_ba(n: usize, seed: u64) -> Graph {
    barabasi_albert(n, 4, seed)
}

fn build_moon_moser(n: usize, _seed: u64) -> Graph {
    moon_moser((n / 3).max(1))
}

fn build_planted(n: usize, seed: u64) -> Graph {
    planted_communities(&PlantedConfig {
        n,
        communities: (n / 8).max(1),
        min_size: 4,
        max_size: 10,
        intra_probability: 0.9,
        background_edges: 2 * n,
        seed,
    })
}

fn build_planted_hub(n: usize, _seed: u64) -> Graph {
    planted_hub(n, 4)
}

fn build_plex(n: usize, seed: u64) -> Graph {
    random_t_plex(n, 3, seed)
}

fn build_path(n: usize, _seed: u64) -> Graph {
    path_graph(n)
}

fn build_cycle(n: usize, _seed: u64) -> Graph {
    cycle_graph(n)
}

fn build_star(n: usize, _seed: u64) -> Graph {
    star_graph(n)
}

fn build_complete(n: usize, _seed: u64) -> Graph {
    Graph::complete(n)
}

fn build_bipartite(n: usize, _seed: u64) -> Graph {
    complete_bipartite(n / 2, n - n / 2)
}

fn build_turan(n: usize, _seed: u64) -> Graph {
    turan_graph(n, 4)
}

/// All named presets, alphabetically by name.
pub const GEN_PRESETS: &[GenPreset] = &[
    GenPreset {
        name: "ba",
        description: "Barabási–Albert preferential attachment, 4 edges per new vertex",
        build: build_ba,
    },
    GenPreset {
        name: "bipartite",
        description: "complete bipartite graph K_{n/2,n-n/2}",
        build: build_bipartite,
    },
    GenPreset {
        name: "complete",
        description: "complete graph K_n (one maximal clique)",
        build: build_complete,
    },
    GenPreset {
        name: "cycle",
        description: "cycle graph C_n",
        build: build_cycle,
    },
    GenPreset {
        name: "er-dense",
        description: "Erdős–Rényi G(n, m) with m = min(16n, n(n-1)/8)",
        build: build_er_dense,
    },
    GenPreset {
        name: "er-scale",
        description: "Erdős–Rényi G(n, m) with m = 10n (bounded-memory CSR stress shape)",
        build: build_er_scale,
    },
    GenPreset {
        name: "er-sparse",
        description: "Erdős–Rényi G(n, m) with m = 4n",
        build: build_er_sparse,
    },
    GenPreset {
        name: "moon-moser",
        description: "Moon–Moser graph K_{3,3,…,3} on ~n vertices (3^(n/3) maximal cliques)",
        build: build_moon_moser,
    },
    GenPreset {
        name: "path",
        description: "path graph P_n",
        build: build_path,
    },
    GenPreset {
        name: "planted",
        description: "overlapping planted communities over a sparse background",
        build: build_planted,
    },
    GenPreset {
        name: "planted-hub",
        description: "hub vertex over a K_{4,4,…} core: every maximal clique contains the hub (scheduler stress case)",
        build: build_planted_hub,
    },
    GenPreset {
        name: "plex",
        description: "random 3-plex (complement has max degree 2)",
        build: build_plex,
    },
    GenPreset {
        name: "star",
        description: "star graph S_n (hub plus n-1 leaves)",
        build: build_star,
    },
    GenPreset {
        name: "turan",
        description: "Turán graph T(n, 4) (complete 4-partite)",
        build: build_turan,
    },
];

/// Looks up a preset by name, case-insensitively.
pub fn gen_preset_by_name(name: &str) -> Option<&'static GenPreset> {
    GEN_PRESETS
        .iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_sorted_and_lowercase() {
        let names: Vec<&str> = GEN_PRESETS.iter().map(|p| p.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "presets sorted and unique");
        for n in names {
            assert_eq!(n, n.to_ascii_lowercase());
        }
    }

    #[test]
    fn every_preset_builds_deterministically() {
        for p in GEN_PRESETS {
            let a = p.build(24, 7);
            let b = p.build(24, 7);
            assert_eq!(a, b, "{} deterministic", p.name);
            assert!(a.n() >= 1, "{} nonempty", p.name);
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(gen_preset_by_name("ER-SPARSE").unwrap().name, "er-sparse");
        assert!(gen_preset_by_name("nope").is_none());
    }

    #[test]
    fn seed_changes_random_models() {
        let a = gen_preset_by_name("er-sparse").unwrap().build(40, 1);
        let b = gen_preset_by_name("er-sparse").unwrap().build(40, 2);
        assert_ne!(a, b);
    }
}
