//! Random t-plex generators.
//!
//! A t-plex is a graph where every vertex misses at most `t` vertices counting
//! itself, i.e. the complement has maximum degree at most `t − 1`. These are
//! exactly the dense candidate subgraphs on which the paper's
//! early-termination technique fires, so the test-suite and the ablation
//! benchmarks need a controllable supply of them.

use mce_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Builds the graph on `n` vertices whose **complement** consists exactly of
/// the given edges (self-loops and duplicates in `complement_edges` are ignored).
pub fn t_plex_from_complement(n: usize, complement_edges: &[(VertexId, VertexId)]) -> Graph {
    let complement = Graph::from_edges(n, complement_edges.iter().copied())
        .expect("complement endpoints are in range");
    let edges = (0..n as VertexId).flat_map(|u| {
        let complement = &complement;
        ((u + 1)..n as VertexId).filter_map(move |v| {
            if complement.has_edge(u, v) {
                None
            } else {
                Some((u, v))
            }
        })
    });
    Graph::from_edges(n, edges).expect("generated endpoints are in range")
}

/// Generates a random t-plex on `n` vertices (`1 ≤ t ≤ 3`).
///
/// * `t = 1` — the complete graph,
/// * `t = 2` — complete graph minus a random partial matching,
/// * `t = 3` — complete graph minus a random union of disjoint paths and
///   cycles (complement max degree 2).
///
/// # Panics
/// Panics if `t` is 0 or greater than 3 (the early-termination technique only
/// covers t ≤ 3, so larger plexes are out of scope here).
pub fn random_t_plex(n: usize, t: usize, seed: u64) -> Graph {
    assert!(
        (1..=3).contains(&t),
        "random_t_plex supports t in 1..=3, got {t}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    if t == 1 || n <= 1 {
        return Graph::complete(n);
    }

    let mut vertices: Vec<VertexId> = (0..n as VertexId).collect();
    vertices.shuffle(&mut rng);
    let mut complement_edges: Vec<(VertexId, VertexId)> = Vec::new();

    if t == 2 {
        // Random partial matching: pair up a random even-sized prefix.
        let pairs = rng.gen_range(0..=n / 2);
        for i in 0..pairs {
            complement_edges.push((vertices[2 * i], vertices[2 * i + 1]));
        }
    } else {
        // t == 3: split a random prefix into chunks, each becoming a path or cycle.
        let mut used = rng.gen_range(0..=n);
        let mut cursor = 0usize;
        while used >= 2 {
            let len = rng.gen_range(2..=used.min(6));
            let chunk = &vertices[cursor..cursor + len];
            let close_cycle = len >= 3 && rng.gen_bool(0.5);
            for w in chunk.windows(2) {
                complement_edges.push((w[0], w[1]));
            }
            if close_cycle {
                complement_edges.push((chunk[len - 1], chunk[0]));
            }
            cursor += len;
            used -= len;
        }
    }

    t_plex_from_complement(n, &complement_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mce_graph::PlexCheck;

    #[test]
    fn complement_construction_round_trips() {
        let g = t_plex_from_complement(5, &[(0, 1), (2, 3)]);
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(2, 3));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 4));
        assert_eq!(g.m(), 10 - 2);
    }

    #[test]
    fn t1_is_complete() {
        let g = random_t_plex(8, 1, 3);
        assert_eq!(g.m(), 28);
        assert_eq!(PlexCheck::plex_level(&g), 1);
    }

    #[test]
    fn t2_is_a_two_plex() {
        for seed in 0..10 {
            let g = random_t_plex(12, 2, seed);
            assert!(PlexCheck::is_t_plex(&g, 2), "seed {seed}");
        }
    }

    #[test]
    fn t3_is_a_three_plex() {
        for seed in 0..10 {
            let g = random_t_plex(15, 3, seed);
            assert!(PlexCheck::is_t_plex(&g, 3), "seed {seed}");
        }
    }

    #[test]
    fn small_inputs() {
        assert_eq!(random_t_plex(0, 2, 1).n(), 0);
        assert_eq!(random_t_plex(1, 3, 1).n(), 1);
        assert_eq!(random_t_plex(2, 3, 1).n(), 2);
    }

    #[test]
    #[should_panic]
    fn t_zero_panics() {
        random_t_plex(5, 0, 1);
    }

    #[test]
    #[should_panic]
    fn t_four_panics() {
        random_t_plex(5, 4, 1);
    }
}
