//! Planted-hub graphs: the worst case for root-level parallel scheduling.
//!
//! Real clique workloads are skewed — a few hub vertices sit in a huge share
//! of the maximal cliques — and schedulers that only distribute whole *root
//! branches* are bounded below by the largest root subtree. This generator
//! produces the extreme point of that regime on purpose: a **hub** vertex
//! adjacent to every other vertex, over a complete multipartite "community
//! core" `K_{s,s,…}` (each maximal clique picks one vertex per part, so a
//! core with `k` parts of size `s` has exactly `s^k` maximal cliques, every
//! one of which contains the hub).
//!
//! Consequences for scheduling:
//!
//! * Under natural-order vertex branching (`BK_Pivot`), the hub is vertex 0,
//!   so its root branch owns the **entire** recursion tree and every other
//!   root is empty — a pulling scheduler degenerates to sequential execution
//!   regardless of thread count, while the splitting scheduler spreads the
//!   hub subtree over all workers.
//! * Parts of size ≥ 4 keep the core's complement degree ≥ 3, so the paper's
//!   early termination (`t ≤ 3`) cannot collapse the subtree and the full
//!   branching recursion is exercised.
//!
//! The `mce-bench` scheduler benchmark and the splitting-scheduler property
//! tests are the intended consumers.

use mce_graph::Graph;

/// Builds a planted-hub graph on `n` vertices: vertex 0 (the hub) is
/// adjacent to all others, and vertices `1..n` form a complete multipartite
/// graph with parts of `part_size` consecutive vertices (the last part may
/// be smaller). With `c` complete parts of size `p ≥ 2` and no remainder the
/// graph has exactly `p^c` maximal cliques, all containing the hub.
///
/// `part_size` is clamped to ≥ 1; `part_size = 1` makes the core a clique
/// (one maximal clique). Deterministic: no randomness is involved.
pub fn planted_hub(n: usize, part_size: usize) -> Graph {
    let part_size = part_size.max(1);
    let mut edges = Vec::new();
    for v in 1..n as u32 {
        edges.push((0, v));
    }
    for u in 1..n as u32 {
        for v in (u + 1)..n as u32 {
            let part_u = (u as usize - 1) / part_size;
            let part_v = (v as usize - 1) / part_size;
            if part_u != part_v {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, edges).expect("endpoints in range by construction")
}

/// The number of maximal cliques of [`planted_hub`]`(n, part_size)` —
/// product of the part sizes of the core (1 for `n ≤ 1`).
pub fn planted_hub_clique_count(n: usize, part_size: usize) -> u64 {
    let part_size = part_size.max(1);
    if n <= 1 {
        return 1;
    }
    let core = n - 1;
    let full_parts = core / part_size;
    let remainder = core % part_size;
    let mut count = (part_size as u64).pow(full_parts as u32);
    if remainder > 0 {
        count *= remainder as u64;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_is_adjacent_to_everything() {
        let g = planted_hub(13, 4);
        assert_eq!(g.degree(0), g.n() - 1);
    }

    #[test]
    fn core_is_complete_multipartite() {
        let g = planted_hub(9, 4);
        // Parts: {1,2,3,4}, {5,6,7,8}.
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(5, 8));
        assert!(g.has_edge(1, 5));
        assert!(g.has_edge(4, 8));
    }

    #[test]
    fn clique_count_formula_matches_structure() {
        assert_eq!(planted_hub_clique_count(9, 4), 16); // 4^2
        assert_eq!(planted_hub_clique_count(13, 4), 64); // 4^3
        assert_eq!(planted_hub_clique_count(12, 4), 4 * 4 * 3); // remainder 3
        assert_eq!(planted_hub_clique_count(1, 4), 1);
        assert_eq!(planted_hub_clique_count(0, 4), 1);
        assert_eq!(planted_hub_clique_count(6, 1), 1); // core is a clique
    }

    #[test]
    fn tiny_instances_are_well_formed() {
        assert_eq!(planted_hub(0, 4).n(), 0);
        assert_eq!(planted_hub(1, 4).m(), 0);
        let g = planted_hub(2, 4);
        assert_eq!((g.n(), g.m()), (2, 1));
    }
}
