//! Property-based tests for the synthetic generators: structural guarantees
//! that the benchmark harness and the paper's synthetic experiments rely on.

use mce_gen::{
    barabasi_albert, complete_bipartite, cycle_graph, erdos_renyi, erdos_renyi_gnp, moon_moser,
    path_graph, planted_communities, random_t_plex, star_graph, turan_graph, PlantedConfig,
};
use mce_graph::{degeneracy_ordering, truss_ordering, PlexCheck};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn er_gnm_has_requested_edges(n in 2usize..200, density in 0usize..10, seed in 0u64..500) {
        let m = n * density;
        let g = erdos_renyi(n, m, seed);
        let possible = n * (n - 1) / 2;
        prop_assert_eq!(g.n(), n);
        prop_assert_eq!(g.m(), m.min(possible));
    }

    #[test]
    fn er_gnp_respects_probability_bounds(n in 2usize..60, p in 0.0f64..1.0, seed in 0u64..500) {
        let g = erdos_renyi_gnp(n, p, seed);
        prop_assert!(g.m() <= n * (n - 1) / 2);
        if p == 0.0 {
            prop_assert_eq!(g.m(), 0);
        }
    }

    #[test]
    fn ba_graph_is_connected_and_has_expected_size(n in 2usize..200, k in 1usize..8, seed in 0u64..500) {
        let g = barabasi_albert(n, k, seed);
        prop_assert_eq!(g.n(), n);
        // Connectivity via BFS from 0.
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn random_plexes_satisfy_their_plex_level(n in 1usize..30, t in 1usize..4, seed in 0u64..500) {
        let g = random_t_plex(n, t, seed);
        prop_assert!(PlexCheck::is_t_plex(&g, t));
    }

    #[test]
    fn planted_graphs_are_deterministic_and_within_bounds(
        n in 10usize..200,
        communities in 0usize..30,
        background in 0usize..300,
        seed in 0u64..100,
    ) {
        let cfg = PlantedConfig {
            n,
            communities,
            min_size: 3,
            max_size: 8,
            intra_probability: 0.9,
            background_edges: background,
            seed,
        };
        let a = planted_communities(&cfg);
        let b = planted_communities(&cfg);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.n(), n);
        prop_assert!(a.m() <= n * (n - 1) / 2);
    }

    #[test]
    fn moon_moser_tau_delta_relationship(k in 1usize..6) {
        // Moon–Moser graphs: δ = 3k−3 and τ = 3k−6 for k ≥ 2 (complete
        // multipartite structure), both strictly below the vertex count.
        let g = moon_moser(k);
        let delta = degeneracy_ordering(&g).degeneracy;
        let tau = truss_ordering(&g).tau;
        prop_assert_eq!(delta, 3 * k - 3);
        if k >= 2 {
            prop_assert_eq!(tau, 3 * k - 6);
        }
        prop_assert!(tau <= delta);
    }

    #[test]
    fn structured_graph_sizes(n in 1usize..100, a in 1usize..30, b in 1usize..30, r in 1usize..8) {
        prop_assert_eq!(path_graph(n).m(), n.saturating_sub(1));
        if n >= 3 {
            prop_assert_eq!(cycle_graph(n).m(), n);
        }
        prop_assert_eq!(star_graph(n).m(), n.saturating_sub(1));
        prop_assert_eq!(complete_bipartite(a, b).m(), a * b);
        let t = turan_graph(n, r);
        prop_assert_eq!(t.n(), n);
    }
}
