//! Frequently co-purchased item patterns in e-commerce — the paper's data
//! mining application (Zaki et al. style association patterns).
//!
//! Synthetic transactions are generated from latent "shopping missions"; the
//! co-purchase graph connects two items when they appear together in at least
//! `support` transactions; maximal cliques of that graph are cohesive item
//! bundles. The example shows the full pipeline: transaction generation →
//! co-occurrence graph construction via [`GraphBuilder`] → clique enumeration
//! with `HBBMC++`.
//!
//! Run with: `cargo run --release --example market_baskets`

use std::collections::HashMap;

use hbbmc::{enumerate_collect, SolverConfig};
use mce_graph::{GraphBuilder, GraphStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITEMS: usize = 600;
const MISSIONS: usize = 40;
const TRANSACTIONS: usize = 8_000;
const SUPPORT: usize = 6;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Latent shopping missions: small sets of items frequently bought together.
    let missions: Vec<Vec<usize>> = (0..MISSIONS)
        .map(|_| {
            let size = rng.gen_range(3..=7);
            (0..size).map(|_| rng.gen_range(0..ITEMS)).collect()
        })
        .collect();

    // Transactions: one mission (with dropout) plus random impulse items.
    let mut co_occurrence: HashMap<(usize, usize), usize> = HashMap::new();
    for _ in 0..TRANSACTIONS {
        let mission = &missions[rng.gen_range(0..MISSIONS)];
        let mut basket: Vec<usize> = mission
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.8))
            .collect();
        for _ in 0..rng.gen_range(0..3) {
            basket.push(rng.gen_range(0..ITEMS));
        }
        basket.sort_unstable();
        basket.dedup();
        for i in 0..basket.len() {
            for j in (i + 1)..basket.len() {
                *co_occurrence.entry((basket[i], basket[j])).or_insert(0) += 1;
            }
        }
    }

    // Co-purchase graph: items connected when their support clears the threshold.
    let mut builder = GraphBuilder::new();
    for (&(a, b), &count) in &co_occurrence {
        if count >= SUPPORT {
            builder.add_edge(a as u64, b as u64);
        }
    }
    let (graph, item_of) = builder.build_with_labels().expect("co-purchase graph");
    println!(
        "co-purchase graph over {} transactions (support ≥ {SUPPORT}): {}",
        TRANSACTIONS,
        GraphStats::compute(&graph)
    );

    // Maximal cliques = maximal sets of items that are all pairwise co-purchased.
    let (cliques, stats) = enumerate_collect(&graph, &SolverConfig::hbbmc_pp());
    let mut bundles: Vec<&Vec<u32>> = cliques.iter().filter(|c| c.len() >= 3).collect();
    bundles.sort_by_key(|c| std::cmp::Reverse(c.len()));

    println!(
        "\n{} maximal cliques in {:.3}s; {} bundles with ≥ 3 items",
        stats.maximal_cliques,
        stats.elapsed.as_secs_f64(),
        bundles.len()
    );
    println!("\nlargest co-purchase bundles (original item ids):");
    for bundle in bundles.iter().take(8) {
        let items: Vec<u64> = bundle.iter().map(|&v| item_of[v as usize]).collect();
        println!("  {} items: {items:?}", items.len());
    }
}
