//! Parallel maximal clique enumeration over independent root branches.
//!
//! The root branching step of every framework (Eq. 1 / Eq. 2 of the paper)
//! produces independent sub-problems; this example splits them across worker
//! threads with [`hbbmc::par_count_maximal_cliques`] and compares wall-clock
//! time against the sequential run for 1, 2, 4 and 8 workers.
//!
//! Run with: `cargo run --release --example parallel_enumeration`

use std::time::Instant;

use hbbmc::{count_maximal_cliques, par_count_maximal_cliques, SolverConfig};
use mce_gen::{planted_communities, PlantedConfig};
use mce_graph::GraphStats;

fn main() {
    let graph = planted_communities(&PlantedConfig {
        n: 6_000,
        communities: 700,
        min_size: 6,
        max_size: 14,
        intra_probability: 0.9,
        background_edges: 20_000,
        seed: 5,
    });
    println!("workload: {}", GraphStats::compute(&graph));

    let config = SolverConfig::hbbmc_pp();

    let start = Instant::now();
    let (sequential_count, stats) = count_maximal_cliques(&graph, &config);
    let sequential_time = start.elapsed().as_secs_f64();
    println!(
        "\nsequential HBBMC++: {sequential_count} maximal cliques in {sequential_time:.3}s \
         ({} recursive calls)",
        stats.recursive_calls
    );

    println!("\nparallel runs (root branches split across workers):");
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let (count, _) = par_count_maximal_cliques(&graph, &config, threads);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(
            count, sequential_count,
            "parallel result must match sequential"
        );
        println!(
            "  {threads} worker(s): {elapsed:.3}s  (speedup {:.2}x)",
            sequential_time / elapsed.max(1e-9)
        );
    }
    println!("\nall parallel runs reported exactly the sequential clique count ✓");
}
