//! Predicting protein complexes in a protein–protein interaction (PPI)
//! network — the paper's biological-network application.
//!
//! Real PPI data is proprietary-ish and noisy; here a synthetic interactome is
//! simulated as planted complexes (dense modules) over a scale-free
//! background, which exercises the same code path. Maximal cliques are treated
//! as putative complexes ("completing defective cliques" à la Yu et al.), and
//! the example also compares the running time of `HBBMC++` against the
//! strongest vertex-oriented baseline on this workload.
//!
//! Run with: `cargo run --release --example protein_complexes`

use hbbmc::{count_maximal_cliques, enumerate_collect, SolverConfig};
use mce_gen::{barabasi_albert, planted_communities, PlantedConfig};
use mce_graph::{GraphBuilder, GraphStats};

fn main() {
    // Scale-free interaction backbone (hub proteins) + planted complexes.
    let backbone = barabasi_albert(1_500, 4, 7);
    let complexes = planted_communities(&PlantedConfig {
        n: 1_500,
        communities: 120,
        min_size: 4,
        max_size: 9,
        intra_probability: 0.85,
        background_edges: 0,
        seed: 11,
    });

    // Merge the two edge sets into one interactome.
    let mut builder = GraphBuilder::with_num_vertices(1_500);
    for (u, v) in backbone.edges() {
        builder.add_edge(u as u64, v as u64);
    }
    for (u, v) in complexes.edges() {
        builder.add_edge(u as u64, v as u64);
    }
    let interactome = builder.build().expect("merged interactome");
    println!(
        "simulated interactome: {}",
        GraphStats::compute(&interactome)
    );

    // Putative complexes = maximal cliques with at least 4 proteins.
    let (cliques, stats) = enumerate_collect(&interactome, &SolverConfig::hbbmc_pp());
    let complexes_found: Vec<_> = cliques.iter().filter(|c| c.len() >= 4).collect();
    println!(
        "\nHBBMC++: {} maximal cliques in {:.3}s, {} putative complexes (≥ 4 proteins), largest has {} proteins",
        stats.maximal_cliques,
        stats.elapsed.as_secs_f64(),
        complexes_found.len(),
        stats.max_clique_size
    );

    // Size histogram of putative complexes.
    let mut histogram = std::collections::BTreeMap::new();
    for c in &complexes_found {
        *histogram.entry(c.len()).or_insert(0usize) += 1;
    }
    println!("\ncomplex size histogram:");
    for (size, count) in histogram {
        println!("  {size:>2} proteins: {count}");
    }

    // Head-to-head timing against the strongest VBBMC baseline on this workload.
    println!("\nalgorithm comparison on the interactome:");
    for (name, config) in [
        ("HBBMC++", SolverConfig::hbbmc_pp()),
        ("HBBMC+ (no ET)", SolverConfig::hbbmc_plus()),
        ("RDegen", SolverConfig::r_degen()),
        ("RRcd", SolverConfig::r_rcd()),
    ] {
        let (count, stats) = count_maximal_cliques(&interactome, &config);
        println!(
            "  {name:<15} {:>8.3}s  {:>9} cliques  {:>10} recursive calls",
            stats.elapsed.as_secs_f64(),
            count,
            stats.recursive_calls
        );
    }
}
