//! Clique census of a network: maximal cliques by size and k-cliques by size.
//!
//! Combines the MCE engine (maximal cliques, via a size-histogram reporter)
//! with the companion k-clique listing module (all cliques of exactly k
//! vertices, EBBkC-style edge-oriented branching) on a scale-free graph — the
//! kind of census used to characterise cohesion in social and biological
//! networks.
//!
//! Run with: `cargo run --release --example clique_census`

use hbbmc::{enumerate, k_clique_census, SizeHistogramReporter, SolverConfig};
use mce_gen::barabasi_albert;
use mce_graph::GraphStats;

fn main() {
    let graph = barabasi_albert(3_000, 8, 17);
    let stats = GraphStats::compute(&graph);
    println!("scale-free network: {stats}");

    // Maximal cliques grouped by size.
    let mut histogram = SizeHistogramReporter::new();
    let run = enumerate(&graph, &SolverConfig::hbbmc_pp(), &mut histogram);
    println!(
        "\n{} maximal cliques in {:.3}s (largest has {} vertices)",
        run.maximal_cliques,
        run.elapsed.as_secs_f64(),
        histogram.max_size()
    );
    println!("maximal cliques by size:");
    for (size, &count) in histogram.histogram.iter().enumerate() {
        if count > 0 {
            println!("  {size:>2}: {count}");
        }
    }

    // All k-cliques (not only maximal ones) up to the maximum clique size.
    let census = k_clique_census(&graph, histogram.max_size());
    println!("\nk-clique census (every clique, not only maximal):");
    for (i, count) in census.iter().enumerate() {
        println!("  {:>2}-cliques: {count}", i + 1);
    }
}
