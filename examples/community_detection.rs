//! Community detection via maximal cliques (the paper's motivating social
//! network application).
//!
//! A synthetic social network with overlapping planted communities is
//! generated, all maximal cliques of size ≥ 4 are enumerated with `HBBMC++`,
//! and the cliques are greedily merged into overlapping communities (a simple
//! clique-percolation-style post-processing).
//!
//! Run with: `cargo run --release --example community_detection`

use std::collections::HashSet;

use hbbmc::{enumerate, CollectReporter, MinSizeFilter, SolverConfig};
use mce_gen::{planted_communities, PlantedConfig};
use mce_graph::{GraphStats, VertexId};

fn main() {
    let config = PlantedConfig {
        n: 2_000,
        communities: 180,
        min_size: 5,
        max_size: 12,
        intra_probability: 0.9,
        background_edges: 4_000,
        seed: 2024,
    };
    let graph = planted_communities(&config);
    println!("social network surrogate: {}", GraphStats::compute(&graph));

    // Enumerate maximal cliques with at least 4 members.
    let min_clique_size = 4;
    let mut reporter = MinSizeFilter::new(CollectReporter::new(), min_clique_size);
    let stats = enumerate(&graph, &SolverConfig::hbbmc_pp(), &mut reporter);
    let cliques = reporter.into_inner().into_sorted();
    println!(
        "{} maximal cliques total, {} with ≥ {min_clique_size} members (enumerated in {:.3}s)",
        stats.maximal_cliques,
        cliques.len(),
        stats.elapsed.as_secs_f64()
    );

    // Greedy community merging: two cliques belong to the same community when
    // they share at least `overlap` vertices.
    let overlap = 3;
    let mut communities: Vec<HashSet<VertexId>> = Vec::new();
    for clique in &cliques {
        let members: HashSet<VertexId> = clique.iter().copied().collect();
        match communities
            .iter_mut()
            .find(|c| c.intersection(&members).count() >= overlap)
        {
            Some(community) => community.extend(members),
            None => communities.push(members),
        }
    }
    communities.sort_by_key(|c| std::cmp::Reverse(c.len()));

    println!("\ntop communities (clique merge with overlap ≥ {overlap}):");
    for (i, community) in communities.iter().take(10).enumerate() {
        println!("  community #{i}: {} members", community.len());
    }
    let covered: HashSet<VertexId> = communities.iter().flatten().copied().collect();
    println!(
        "\n{} communities cover {} of {} vertices ({:.1}%)",
        communities.len(),
        covered.len(),
        graph.n(),
        100.0 * covered.len() as f64 / graph.n() as f64
    );
}
