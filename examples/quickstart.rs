//! Quickstart: build a small graph, enumerate its maximal cliques with the
//! paper's flagship algorithm (`HBBMC++`) and inspect the run statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use hbbmc::{enumerate_collect, naive_maximal_cliques, SolverConfig};
use mce_graph::{Graph, GraphStats};

fn main() {
    // A toy collaboration network: two dense groups sharing vertex 4, plus a
    // couple of loosely attached members.
    let graph = Graph::from_edges(
        10,
        [
            // group A: {0,1,2,3,4} is a 5-clique
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            // group B: {4,5,6,7} is a 4-clique
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7),
            // periphery
            (7, 8),
            (8, 9),
        ],
    )
    .expect("valid edge list");

    let stats = GraphStats::compute(&graph);
    println!("input graph: {stats}");

    let config = SolverConfig::hbbmc_pp();
    let (cliques, run) = enumerate_collect(&graph, &config);

    println!("\nmaximal cliques found by HBBMC++:");
    for clique in &cliques {
        println!("  {clique:?}");
    }
    println!("\nrun statistics: {run}");

    // Cross-check against the reference enumerator (small graphs only).
    let reference = naive_maximal_cliques(&graph);
    assert_eq!(
        cliques, reference,
        "HBBMC++ agrees with the reference enumerator"
    );
    println!("\nverified against the reference enumerator ✓");
}
