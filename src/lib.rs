//! Umbrella crate for the HBBMC reproduction workspace.
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The actual library code lives in:
//!
//! * [`mce_graph`] — graph substrate (CSR graphs, degeneracy, truss ordering,
//!   k-plex topology, I/O),
//! * [`mce_gen`] — synthetic graph generators,
//! * [`hbbmc`] — the maximal clique enumeration frameworks (VBBMC, EBBMC,
//!   HBBMC) with early termination and graph reduction.

pub use hbbmc;
pub use mce_gen;
pub use mce_graph;
