//! Umbrella crate for the HBBMC reproduction workspace.
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The actual library code lives in:
//!
//! * [`mce_graph`] — graph substrate (CSR graphs, degeneracy, truss ordering,
//!   k-plex topology, I/O),
//! * [`mce_gen`] — synthetic graph generators,
//! * [`hbbmc`] — the maximal clique enumeration frameworks (VBBMC, EBBMC,
//!   HBBMC) with early termination and graph reduction.
//!
//! # Quick start
//!
//! The three re-exports give one-stop access to the whole stack; this is the
//! `hbbmc` crate-level example driven through the umbrella:
//!
//! ```
//! use hbbmc_repro::hbbmc::{enumerate_collect, SolverConfig};
//! use hbbmc_repro::mce_graph::Graph;
//!
//! // Two triangles sharing the edge (0, 2).
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)]).unwrap();
//! let (cliques, stats) = enumerate_collect(&g, &SolverConfig::hbbmc_pp());
//! assert_eq!(cliques, vec![vec![0, 1, 2], vec![0, 2, 3]]);
//! assert_eq!(stats.maximal_cliques, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hbbmc;
pub use mce_gen;
pub use mce_graph;

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_resolve_and_agree_on_the_quick_start_graph() {
        // Build through the re-exported substrate, generate through the
        // re-exported generators, solve through the re-exported core: the
        // three paths must interoperate on the same `Graph` type.
        let g = crate::mce_graph::Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)])
            .unwrap();
        let (cliques, stats) =
            crate::hbbmc::enumerate_collect(&g, &crate::hbbmc::SolverConfig::hbbmc_pp());
        assert_eq!(cliques, vec![vec![0, 1, 2], vec![0, 2, 3]]);
        assert_eq!(stats.maximal_cliques, 2);

        let mm = crate::mce_gen::moon_moser(3);
        let (count, _) =
            crate::hbbmc::count_maximal_cliques(&mm, &crate::hbbmc::SolverConfig::hbbmc_pp());
        assert_eq!(count, 27, "Moon–Moser k=3 has 3^3 maximal cliques");
    }
}
